#include "sim/vcd.hpp"

#include "util/error.hpp"

namespace retscan {

VcdWriter::VcdWriter(std::ostream& os, const Simulator& sim, double timescale_ns)
    : os_(&os), sim_(&sim), timescale_ns_(timescale_ns) {
  RETSCAN_CHECK(timescale_ns_ > 0, "VcdWriter: bad timescale");
}

std::string VcdWriter::code_for(std::size_t index) {
  // Printable identifier alphabet per the VCD spec: '!' .. '~'.
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

bool VcdWriter::add_signal(const std::string& net_name) {
  RETSCAN_CHECK(!header_written_, "VcdWriter: add_signal after header");
  if (!sim_->netlist().has_net(net_name)) {
    return false;
  }
  add_signal(sim_->netlist().find_net(net_name), net_name);
  return true;
}

void VcdWriter::add_signal(NetId net, const std::string& display_name) {
  RETSCAN_CHECK(!header_written_, "VcdWriter: add_signal after header");
  Signal signal;
  signal.net = net;
  signal.name = display_name;
  signal.code = code_for(signals_.size());
  signals_.push_back(std::move(signal));
}

void VcdWriter::write_header(const std::string& module_name) {
  RETSCAN_CHECK(!header_written_, "VcdWriter: header already written");
  *os_ << "$timescale " << static_cast<long long>(timescale_ns_ * 1000.0)
       << " ps $end\n";
  *os_ << "$scope module " << module_name << " $end\n";
  for (const Signal& s : signals_) {
    *os_ << "$var wire 1 " << s.code << " " << s.name << " $end\n";
  }
  *os_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::sample() {
  RETSCAN_CHECK(header_written_, "VcdWriter: sample before header");
  bool stamped = false;
  for (Signal& s : signals_) {
    const int value = sim_->net_value(s.net) ? 1 : 0;
    if (value != s.last) {
      if (!stamped) {
        *os_ << "#" << time_ << "\n";
        stamped = true;
      }
      *os_ << value << s.code << "\n";
      s.last = value;
    }
  }
  ++time_;
}

}  // namespace retscan
