#include "sim/artifact_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/fnv.hpp"
#include "util/journal.hpp"  // crc32
#include "util/lanes.hpp"

namespace retscan {

namespace {

constexpr std::uint32_t kArtifactMagic = 0x41435352u;  // "RSCA" little-endian
constexpr std::uint32_t kArtifactFormat = 1;

/// Little-endian byte-buffer writer. Every field is written explicitly —
/// never a struct memcpy — so the image has no padding bytes, no
/// host-struct-layout dependence and a stable CRC.
struct ByteWriter {
  std::vector<unsigned char> bytes;

  void u8(std::uint8_t value) { bytes.push_back(value); }
  void u16(std::uint16_t value) {
    for (int i = 0; i < 2; ++i) {
      bytes.push_back(static_cast<unsigned char>(value >> (8 * i)));
    }
  }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<unsigned char>(value >> (8 * i)));
    }
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<unsigned char>(value >> (8 * i)));
    }
  }
};

/// Bounds-checked little-endian reader over a loaded image.
struct ByteReader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool have(std::size_t count) const { return size - pos >= count; }
  std::uint8_t u8() { return data[pos++]; }
  std::uint16_t u16() {
    std::uint16_t value = 0;
    for (int i = 0; i < 2; ++i) {
      value = static_cast<std::uint16_t>(value | (std::uint16_t{data[pos++]} << (8 * i)));
    }
    return value;
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= std::uint32_t{data[pos++]} << (8 * i);
    }
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= std::uint64_t{data[pos++]} << (8 * i);
    }
    return value;
  }
};

[[noreturn]] void reject(const std::string& field, const std::string& detail) {
  throw Error("compiled-netlist artifact rejected (" + field + "): " + detail);
}

// Header byte size: magic + format + lane_words + reserved (4 x u32),
// fingerprint + 5 counts (6 x u64), crc (u32).
constexpr std::size_t kHeaderBytes = 4 * 4 + 6 * 8 + 4;
// One serialized instruction: in0/in1/in2/out/cell (5 x u32) + domain (u16)
// + op (u8).
constexpr std::size_t kInstrBytes = 5 * 4 + 2 + 1;

}  // namespace

/// The one component allowed to touch CompiledNetlist's private state: it
/// enumerates the fields for serialization and rebuilds an instance from a
/// validated image. Field lists here and in the class declaration must move
/// together — kArtifactFormat bumps when they do.
struct CompiledArtifactCodec {
  static void write_body(ByteWriter& out, const CompiledNetlist& c) {
    for (const std::uint32_t slot : c.slot_of_net_) {
      out.u32(slot);
    }
    for (const NetId net : c.net_of_slot_) {
      out.u32(net);
    }
    for (const CompiledInstr& instr : c.instrs_) {
      out.u32(instr.in0);
      out.u32(instr.in1);
      out.u32(instr.in2);
      out.u32(instr.out);
      out.u32(instr.cell);
      out.u16(instr.domain);
      out.u8(static_cast<std::uint8_t>(instr.op));
    }
    for (const std::uint32_t level : c.instr_level_) {
      out.u32(level);
    }
    for (const std::uint32_t offset : c.reader_offsets_) {
      out.u32(offset);
    }
    for (const std::uint32_t instr : c.reader_instrs_) {
      out.u32(instr);
    }
  }

  static std::size_t body_bytes(std::size_t slots, std::size_t instrs,
                                std::size_t readers) {
    return slots * 4 * 2                // slot_of_net + net_of_slot
           + instrs * kInstrBytes       // instruction stream
           + instrs * 4                 // instr_level
           + (slots + 1) * 4            // reader_offsets (CSR)
           + readers * 4;               // reader_instrs
  }

  static const CompiledNetlist& fields(const CompiledNetlist& c) { return c; }

  static std::shared_ptr<const CompiledNetlist> read_body(
      ByteReader& in, std::size_t slots, std::size_t instrs,
      std::size_t levels, std::size_t domains, std::size_t readers) {
    auto compiled = std::shared_ptr<CompiledNetlist>(new CompiledNetlist());
    compiled->slot_of_net_.resize(slots);
    for (std::uint32_t& slot : compiled->slot_of_net_) {
      slot = in.u32();
    }
    compiled->net_of_slot_.resize(slots);
    for (NetId& net : compiled->net_of_slot_) {
      net = in.u32();
    }
    compiled->instrs_.resize(instrs);
    for (CompiledInstr& instr : compiled->instrs_) {
      instr.in0 = in.u32();
      instr.in1 = in.u32();
      instr.in2 = in.u32();
      instr.out = in.u32();
      instr.cell = in.u32();
      instr.domain = in.u16();
      const std::uint8_t op = in.u8();
      if (op > static_cast<std::uint8_t>(CompiledOp::Mux2)) {
        reject("instr op", "opcode " + std::to_string(op) + " out of range");
      }
      instr.op = static_cast<CompiledOp>(op);
    }
    compiled->instr_level_.resize(instrs);
    for (std::uint32_t& level : compiled->instr_level_) {
      level = in.u32();
      if (level >= levels) {
        reject("instr level", "level " + std::to_string(level) +
                                  " >= level_count " + std::to_string(levels));
      }
    }
    compiled->level_count_ = levels;
    compiled->domain_count_ = domains;
    compiled->reader_offsets_.resize(slots + 1);
    for (std::uint32_t& offset : compiled->reader_offsets_) {
      offset = in.u32();
    }
    compiled->reader_instrs_.resize(readers);
    for (std::uint32_t& instr : compiled->reader_instrs_) {
      instr = in.u32();
    }
    return compiled;
  }

  static std::size_t slot_count(const CompiledNetlist& c) {
    return c.slot_of_net_.size();
  }
  static std::size_t reader_count(const CompiledNetlist& c) {
    return c.reader_instrs_.size();
  }
};

std::uint64_t netlist_structure_fingerprint(const Netlist& netlist) {
  Fnv1a fp;
  fp.add_text(netlist.name());
  fp.add(netlist.net_count());
  fp.add(netlist.cell_count());
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    fp.add(static_cast<std::uint64_t>(cell.type));
    fp.add(cell.domain);
    fp.add(cell.out);
    fp.add(cell.fanin.size());
    for (const NetId net : cell.fanin) {
      fp.add(net);
    }
  }
  for (const CellId id : netlist.inputs()) {
    fp.add(id);
  }
  for (const CellId id : netlist.outputs()) {
    fp.add(id);
  }
  return fp.hash;
}

void write_compiled_artifact(std::ostream& out, const CompiledNetlist& compiled,
                             std::uint64_t fingerprint) {
  ByteWriter header;
  header.u32(kArtifactMagic);
  header.u32(kArtifactFormat);
  header.u32(kLaneWords);
  header.u32(0);  // reserved
  header.u64(fingerprint);
  header.u64(CompiledArtifactCodec::slot_count(compiled));
  header.u64(compiled.instrs().size());
  header.u64(compiled.level_count());
  header.u64(compiled.domain_count());
  header.u64(CompiledArtifactCodec::reader_count(compiled));
  header.u32(crc32(header.bytes.data(), header.bytes.size()));

  ByteWriter body;
  CompiledArtifactCodec::write_body(body, compiled);
  const std::uint32_t body_crc = crc32(body.bytes.data(), body.bytes.size());

  out.write(reinterpret_cast<const char*>(header.bytes.data()),
            static_cast<std::streamsize>(header.bytes.size()));
  out.write(reinterpret_cast<const char*>(body.bytes.data()),
            static_cast<std::streamsize>(body.bytes.size()));
  ByteWriter tail;
  tail.u32(body_crc);
  out.write(reinterpret_cast<const char*>(tail.bytes.data()),
            static_cast<std::streamsize>(tail.bytes.size()));
  if (!out) {
    throw Error("compiled-netlist artifact: write failed");
  }
}

std::shared_ptr<const CompiledNetlist> read_compiled_artifact(
    std::istream& in, std::uint64_t expect_fingerprint) {
  std::vector<unsigned char> image{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  if (image.size() < kHeaderBytes) {
    reject("header size", "file holds " + std::to_string(image.size()) +
                              " bytes, header needs " +
                              std::to_string(kHeaderBytes));
  }
  ByteReader reader{image.data(), image.size()};
  const std::uint32_t magic = reader.u32();
  if (magic != kArtifactMagic) {
    reject("magic", "not a retscan compiled-netlist artifact");
  }
  const std::uint32_t format = reader.u32();
  if (format != kArtifactFormat) {
    reject("format", "artifact format " + std::to_string(format) +
                         ", this build reads format " +
                         std::to_string(kArtifactFormat));
  }
  const std::uint32_t lane_words = reader.u32();
  if (lane_words != kLaneWords) {
    reject("lane_words", "artifact written by a lane_words=" +
                             std::to_string(lane_words) +
                             " build, this build is lane_words=" +
                             std::to_string(kLaneWords));
  }
  reader.u32();  // reserved
  const std::uint64_t fingerprint = reader.u64();
  const std::uint64_t slots = reader.u64();
  const std::uint64_t instrs = reader.u64();
  const std::uint64_t levels = reader.u64();
  const std::uint64_t domains = reader.u64();
  const std::uint64_t readers = reader.u64();
  const std::uint32_t header_crc = reader.u32();
  if (header_crc != crc32(image.data(), kHeaderBytes - 4)) {
    reject("header crc", "stored header checksum does not match its contents");
  }
  if (fingerprint != expect_fingerprint) {
    reject("netlist_fingerprint",
           "artifact compiled from a different netlist structure");
  }
  const std::size_t body =
      CompiledArtifactCodec::body_bytes(slots, instrs, readers);
  if (image.size() != kHeaderBytes + body + 4) {
    reject("body size", "expected " + std::to_string(kHeaderBytes + body + 4) +
                            " bytes total, file holds " +
                            std::to_string(image.size()) + " (truncated?)");
  }
  const std::uint32_t body_crc = crc32(image.data() + kHeaderBytes, body);
  ByteReader tail{image.data(), image.size(), kHeaderBytes + body};
  if (tail.u32() != body_crc) {
    reject("body crc", "stored body checksum does not match its contents");
  }
  return CompiledArtifactCodec::read_body(reader, slots, instrs, levels,
                                          domains, readers);
}

CompiledArtifactStore::CompiledArtifactStore(std::string dir)
    : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_)) {
    throw Error("artifact store '" + dir_ +
                "': cannot create (or is not) a directory");
  }
}

std::string CompiledArtifactStore::artifact_path(std::uint64_t fingerprint) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.rsca",
                static_cast<unsigned long long>(fingerprint));
  return (std::filesystem::path(dir_) / name).string();
}

std::shared_ptr<const CompiledNetlist> CompiledArtifactStore::load(
    std::uint64_t fingerprint) {
  std::ifstream in(artifact_path(fingerprint), std::ios::binary);
  if (!in) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return nullptr;
  }
  try {
    std::shared_ptr<const CompiledNetlist> compiled =
        read_compiled_artifact(in, fingerprint);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return compiled;
  } catch (const Error&) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    return nullptr;
  }
}

void CompiledArtifactStore::store(std::uint64_t fingerprint,
                                  const CompiledNetlist& compiled) {
  namespace fs = std::filesystem;
  const std::string path = artifact_path(fingerprint);
  // Unique temp name per writer so concurrent processes never interleave
  // into one file; the final rename is atomic within the directory.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid()));
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw Error("artifact store: cannot open '" + tmp + "' for writing");
      }
      write_compiled_artifact(out, compiled, fingerprint);
    }
    fs::rename(tmp, path);
  } catch (const std::exception&) {
    std::error_code ec;
    fs::remove(tmp, ec);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.write_errors;
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stored;
}

std::shared_ptr<const CompiledNetlist> CompiledArtifactStore::load_or_compile(
    const Netlist& netlist) {
  const std::uint64_t fingerprint = netlist_structure_fingerprint(netlist);
  if (std::shared_ptr<const CompiledNetlist> compiled = load(fingerprint)) {
    return compiled;
  }
  auto compiled = std::make_shared<const CompiledNetlist>(netlist);
  store(fingerprint, *compiled);
  return compiled;
}

CompiledArtifactStore::Stats CompiledArtifactStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

std::mutex& store_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::shared_ptr<CompiledArtifactStore>& store_slot() {
  static std::shared_ptr<CompiledArtifactStore> store;
  return store;
}

/// RETSCAN_ARTIFACT_DIR is consulted once; explicit install() beats it.
bool& env_checked() {
  static bool checked = false;
  return checked;
}

}  // namespace

void install_artifact_store(std::shared_ptr<CompiledArtifactStore> store) {
  const std::lock_guard<std::mutex> lock(store_mutex());
  store_slot() = std::move(store);
  env_checked() = true;  // an explicit install (even nullptr) pins the choice
}

std::shared_ptr<CompiledArtifactStore> installed_artifact_store() {
  const std::lock_guard<std::mutex> lock(store_mutex());
  if (!env_checked()) {
    env_checked() = true;
    if (const char* dir = std::getenv("RETSCAN_ARTIFACT_DIR");
        dir != nullptr && *dir != '\0') {
      try {
        store_slot() = std::make_shared<CompiledArtifactStore>(dir);
      } catch (const Error& error) {
        std::fprintf(stderr,
                     "[retscan] warning: RETSCAN_ARTIFACT_DIR ignored: %s\n",
                     error.what());
      }
    }
  }
  return store_slot();
}

}  // namespace retscan
