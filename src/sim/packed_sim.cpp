#include "sim/packed_sim.hpp"

#include "util/error.hpp"

namespace retscan {

// No activity lanes: PackedSim exposes no toggle/energy accounting, and an
// activity-free engine runs the cheaper plain-store evaluation sweep.
PackedSim::PackedSim(const Netlist& netlist) : engine_(netlist, 0) {}

void PackedSim::set_input(const std::string& port_name, LaneWord lanes) {
  set_input(engine_.input_net(port_name), lanes);
}

void PackedSim::set_input(NetId net, LaneWord lanes) {
  engine_.check_input_net(net);
  engine_.set_net(net, lanes);
}

void PackedSim::set_input_all(const std::string& port_name, bool value) {
  set_input(port_name, lane_broadcast(value));
}

void PackedSim::set_input_all(NetId net, bool value) {
  set_input(net, lane_broadcast(value));
}

void PackedSim::reset() { engine_.reset(); }

void PackedSim::eval() { engine_.eval(); }

void PackedSim::step() { engine_.step(); }

void PackedSim::step_n(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    step();
  }
}

LaneWord PackedSim::net_lanes(NetId net) const {
  RETSCAN_CHECK(net < engine_.net_count(), "PackedSim::net_lanes: bad net");
  return engine_.net(net);
}

bool PackedSim::net_value(NetId net, std::size_t lane) const {
  RETSCAN_CHECK(lane < kLaneCount, "PackedSim::net_value: bad lane");
  return (net_lanes(net) >> lane & 1u) != 0;
}

LaneWord PackedSim::output_lanes(const std::string& port_name) const {
  return net_lanes(netlist().output_net(port_name));
}

LaneWord PackedSim::flop_lanes(CellId flop) const {
  RETSCAN_CHECK(flop < netlist().cell_count() && cell_is_flop(netlist().cell(flop).type),
                "PackedSim::flop_lanes: not a flop");
  return engine_.flop(flop);
}

void PackedSim::set_flop_lanes(CellId flop, LaneWord lanes) {
  RETSCAN_CHECK(flop < netlist().cell_count() && cell_is_flop(netlist().cell(flop).type),
                "PackedSim::set_flop_lanes: not a flop");
  engine_.set_flop_raw(flop, lanes);
}

BitVec PackedSim::flop_states(std::size_t lane) const {
  RETSCAN_CHECK(lane < kLaneCount, "PackedSim::flop_states: bad lane");
  const auto& flops = engine_.flop_cells();
  BitVec states(flops.size());
  for (std::size_t i = 0; i < flops.size(); ++i) {
    states.set(i, (engine_.flop(flops[i]) >> lane & 1u) != 0);
  }
  return states;
}

void PackedSim::set_flop_states(const std::vector<BitVec>& rows) {
  if (rows.empty()) {
    return;  // no lanes to load; every lane keeps its state
  }
  const auto& flops = engine_.flop_cells();
  const LaneWord keep = ~lane_mask(rows.size());
  for (std::size_t lane = 0; lane < rows.size(); ++lane) {
    RETSCAN_CHECK(rows[lane].size() == flops.size(),
                  "PackedSim::set_flop_states: size mismatch");
  }
  const std::vector<LaneWord> packed = pack_lanes(rows);
  for (std::size_t i = 0; i < flops.size(); ++i) {
    engine_.set_flop_raw(flops[i], (engine_.flop(flops[i]) & keep) | packed[i]);
  }
  refresh();
}

LaneWord PackedSim::retention_lanes(CellId flop) const {
  RETSCAN_CHECK(flop < netlist().cell_count() && netlist().cell(flop).type == CellType::Rdff,
                "PackedSim::retention_lanes: not an Rdff");
  return engine_.retention(flop);
}

void PackedSim::set_retention_lanes(CellId flop, LaneWord lanes) {
  RETSCAN_CHECK(flop < netlist().cell_count() && netlist().cell(flop).type == CellType::Rdff,
                "PackedSim::set_retention_lanes: not an Rdff");
  engine_.set_retention(flop, lanes);
}

void PackedSim::flip_retention(CellId flop, LaneWord lane_mask) {
  RETSCAN_CHECK(flop < netlist().cell_count() && netlist().cell(flop).type == CellType::Rdff,
                "PackedSim::flip_retention: not an Rdff");
  engine_.xor_retention(flop, lane_mask);
}

void PackedSim::refresh() {
  engine_.commit_sequential_outputs();
  engine_.eval();
}

void PackedSim::power_off(DomainId domain, Rng* rng) {
  engine_.power_off(domain, rng, /*per_lane_garbage=*/true);
}

void PackedSim::power_on(DomainId domain) { engine_.power_on(domain); }

bool PackedSim::domain_powered(DomainId domain) const {
  return engine_.domain_powered(domain);
}

}  // namespace retscan
