#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "util/error.hpp"
#include "util/lanes.hpp"  // LaneWord / LaneBlock lane primitives

namespace retscan {

/// Word-parallel evaluation of one combinational cell over 64 lanes.
/// `values` is indexed by NetId and holds one LaneWord per net. This is the
/// single shared gate-evaluation kernel: the cycle simulators (scalar
/// Simulator facade and PackedSim, via SimEngine) and the combinational
/// fault-simulation frame all call it, so gate semantics are defined in
/// exactly one place. The compiled block sweep (CompiledNetlist::eval_full
/// over LaneBlock storage) widens the same semantics to kLaneBlockBits lanes.
template <typename Values>
inline LaneWord eval_comb_word(const Cell& cell, const Values& values) {
  const auto& f = cell.fanin;
  switch (cell.type) {
    case CellType::Const0: return 0;
    case CellType::Const1: return kAllLanes;
    case CellType::Buf: return values[f[0]];
    case CellType::Not: return ~values[f[0]];
    case CellType::And2: return values[f[0]] & values[f[1]];
    case CellType::Or2: return values[f[0]] | values[f[1]];
    case CellType::Xor2: return values[f[0]] ^ values[f[1]];
    case CellType::Nand2: return ~(values[f[0]] & values[f[1]]);
    case CellType::Nor2: return ~(values[f[0]] | values[f[1]]);
    case CellType::Xnor2: return ~(values[f[0]] ^ values[f[1]]);
    case CellType::Mux2: return lane_mux(values[f[0]], values[f[1]], values[f[2]]);
    default:
      RETSCAN_CHECK(false, "eval_comb_word: not a combinational cell");
      return 0;
  }
}

}  // namespace retscan
