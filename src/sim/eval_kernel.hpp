#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace retscan {

/// One machine word of simulation lanes. Bit b of a LaneWord holds the value
/// of net/state slot for lane b, so every bitwise gate operation evaluates 64
/// independent pattern/seed slots at once — the classic word-level
/// bit-parallel technique of industrial fault simulators.
using LaneWord = std::uint64_t;

inline constexpr std::size_t kLaneCount = 64;
inline constexpr LaneWord kAllLanes = ~LaneWord{0};

/// Replicate a scalar boolean across all lanes.
constexpr LaneWord lane_broadcast(bool value) { return value ? kAllLanes : LaneWord{0}; }

/// Mask selecting lanes [0, count).
constexpr LaneWord lane_mask(std::size_t count) {
  return count >= kLaneCount ? kAllLanes : (LaneWord{1} << count) - 1;
}

/// Lane-wise 2:1 select: sel ? b : a.
constexpr LaneWord lane_mux(LaneWord sel, LaneWord a, LaneWord b) {
  return (sel & b) | (~sel & a);
}

/// Word-parallel evaluation of one combinational cell over 64 lanes.
/// `values` is indexed by NetId and holds one LaneWord per net. This is the
/// single shared gate-evaluation kernel: the cycle simulators (scalar
/// Simulator facade and PackedSim, via SimEngine) and the combinational
/// fault-simulation frame all call it, so gate semantics are defined in
/// exactly one place.
template <typename Values>
inline LaneWord eval_comb_word(const Cell& cell, const Values& values) {
  const auto& f = cell.fanin;
  switch (cell.type) {
    case CellType::Const0: return 0;
    case CellType::Const1: return kAllLanes;
    case CellType::Buf: return values[f[0]];
    case CellType::Not: return ~values[f[0]];
    case CellType::And2: return values[f[0]] & values[f[1]];
    case CellType::Or2: return values[f[0]] | values[f[1]];
    case CellType::Xor2: return values[f[0]] ^ values[f[1]];
    case CellType::Nand2: return ~(values[f[0]] & values[f[1]]);
    case CellType::Nor2: return ~(values[f[0]] | values[f[1]]);
    case CellType::Xnor2: return ~(values[f[0]] ^ values[f[1]]);
    case CellType::Mux2: return lane_mux(values[f[0]], values[f[1]], values[f[2]]);
    default:
      RETSCAN_CHECK(false, "eval_comb_word: not a combinational cell");
      return 0;
  }
}

}  // namespace retscan
