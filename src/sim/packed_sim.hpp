#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace retscan {

/// 64-way bit-parallel batch simulator — the wide facade of SimEngine.
///
/// Each of the 64 lanes is an independent pattern/seed slot: lane b of every
/// net and state word carries simulation b's value, so one step() advances 64
/// simulations for the cost of (roughly) one. Inputs may be driven per lane
/// (one LaneWord = 64 independent stimulus bits) or broadcast; fault-free and
/// corrupted trials co-exist in different lanes of the same run. The cycle
/// and power-gating semantics are the engine's — identical, by construction
/// and by test, to the scalar Simulator's (lane 0 of a PackedSim run with
/// replicated stimulus matches Simulator bit-exactly).
///
/// This is the workhorse behind parallel-pattern scan tests
/// (atpg/scan_test), batched injection campaigns (testbench/harness) and any
/// future statistical workload that needs paper-scale sequence counts.
class PackedSim {
 public:
  explicit PackedSim(const Netlist& netlist);

  const Netlist& netlist() const { return engine_.netlist(); }
  static constexpr std::size_t lane_count() { return kLaneCount; }

  // --- stimulus -----------------------------------------------------------
  /// Drive a primary input with one bit per lane.
  void set_input(const std::string& port_name, LaneWord lanes);
  void set_input(NetId net, LaneWord lanes);
  /// Broadcast one value to every lane of a primary input.
  void set_input_all(const std::string& port_name, bool value);
  void set_input_all(NetId net, bool value);
  // A bool would silently convert to LaneWord 1 and drive lane 0 only; force
  // callers to pick a lane word or the explicit broadcast.
  void set_input(const std::string& port_name, bool value) = delete;
  void set_input(NetId net, bool value) = delete;

  /// Zero all state and inputs in every lane; powers all domains on.
  void reset();
  /// Combinational settle only (no clock edge).
  void eval();
  /// One full clock cycle in all 64 lanes.
  void step();
  void step_n(std::size_t count);

  // --- observation --------------------------------------------------------
  LaneWord net_lanes(NetId net) const;
  bool net_value(NetId net, std::size_t lane) const;
  /// Lane word of a primary output by port name.
  LaneWord output_lanes(const std::string& port_name) const;

  LaneWord flop_lanes(CellId flop) const;
  /// Write a flop's master state (all lanes) WITHOUT re-driving outputs;
  /// call refresh() after a batch of writes.
  void set_flop_lanes(CellId flop, LaneWord lanes);
  /// States of all flops in netlist.flops() order, one BitVec per lane slot.
  BitVec flop_states(std::size_t lane) const;
  /// Load per-lane flop states (rows indexed by lane, each in
  /// netlist.flops() order; missing lanes keep their current state), then
  /// refresh().
  void set_flop_states(const std::vector<BitVec>& rows);

  LaneWord retention_lanes(CellId flop) const;
  void set_retention_lanes(CellId flop, LaneWord lanes);
  /// Flip the balloon latch of `flop` in the lanes selected by `lane_mask`.
  void flip_retention(CellId flop, LaneWord lane_mask);

  /// Re-drive sequential outputs and settle after direct state writes.
  void refresh();

  // --- power domains ------------------------------------------------------
  /// Cut power in every lane; master state becomes independent per-lane
  /// garbage from `rng` (zeros if null).
  void power_off(DomainId domain, Rng* rng = nullptr);
  void power_on(DomainId domain);
  bool domain_powered(DomainId domain) const;

  /// Flop cells (netlist.flops() order) and Rdff cells, precomputed.
  const std::vector<CellId>& flop_cells() const { return engine_.flop_cells(); }
  const std::vector<CellId>& rdff_cells() const { return engine_.rdff_cells(); }

  // --- evaluation schedule ------------------------------------------------
  /// Settle scheduling (sweep vs dirty-net worklist, see sim/schedule.hpp);
  /// all lanes of every net are bit-identical under every mode.
  void set_schedule(Schedule schedule) { engine_.set_schedule(schedule); }
  Schedule schedule() const { return engine_.schedule(); }
  ScheduleTelemetry take_schedule_telemetry() { return engine_.take_schedule_telemetry(); }
  void invalidate_schedule_state() { engine_.invalidate_schedule_state(); }

 private:
  SimEngine engine_;
};

}  // namespace retscan
