#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace retscan {

/// Value-change-dump (IEEE 1364 VCD) writer for debugging protected-design
/// control sequences in a waveform viewer. Attach to a Simulator, select
/// nets (by name or id), then call sample() once per clock cycle; emits
/// only actual changes.
class VcdWriter {
 public:
  /// `timescale_ns` is the VCD timestep per sample (one clock period).
  VcdWriter(std::ostream& os, const Simulator& sim, double timescale_ns = 10.0);

  /// Track a named net. Returns false if the name is unknown.
  bool add_signal(const std::string& net_name);
  /// Track an arbitrary net under an explicit display name.
  void add_signal(NetId net, const std::string& display_name);

  /// Write the header. Must be called after all add_signal() calls and
  /// before the first sample().
  void write_header(const std::string& module_name = "retscan");

  /// Record the current values at the next timestep.
  void sample();

  std::size_t signal_count() const { return signals_.size(); }

 private:
  struct Signal {
    NetId net;
    std::string name;
    std::string code;   // VCD identifier code
    int last = -1;      // -1 = not yet emitted
  };

  static std::string code_for(std::size_t index);

  std::ostream* os_;
  const Simulator* sim_;
  double timescale_ns_;
  std::vector<Signal> signals_;
  std::uint64_t time_ = 0;
  bool header_written_ = false;
};

}  // namespace retscan
