#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "retscan/runtime.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace retscan {

SimEngine::SimEngine(const Netlist& netlist, LaneWord activity_lanes)
    : netlist_(&netlist),
      compiled_(netlist.compiled()),
      activity_lanes_(activity_lanes),
      flop_state_(netlist.cell_count(), 0),
      retention_state_(netlist.cell_count(), 0),
      prev_retain_(netlist.cell_count(), 0),
      toggles_(netlist.cell_count(), 0) {
  net_values_.assign(compiled_->slot_count(), 0);
  DomainId max_domain = 0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    max_domain = std::max(max_domain, c.domain);
    if (c.type == CellType::Const1) {
      const1_slots_.emplace_back(compiled_->slot(c.out), id);
    }
    if (cell_is_flop(c.type)) {
      flop_cells_.push_back(id);
    }
    if (c.type == CellType::Rdff) {
      rdff_cells_.push_back(id);
    }
    if (!cell_is_sequential(c.type)) {
      continue;
    }
    SeqCell s;
    s.id = id;
    s.type = c.type;
    s.out = compiled_->slot(c.out);
    s.domain = c.domain;
    switch (c.type) {
      case CellType::Dff:
        s.d = compiled_->slot(c.fanin[0]);
        break;
      case CellType::Sdff:
        s.d = compiled_->slot(c.fanin[0]);
        s.si = compiled_->slot(c.fanin[1]);
        s.se = compiled_->slot(c.fanin[2]);
        break;
      case CellType::Rdff:
        s.d = compiled_->slot(c.fanin[0]);
        s.si = compiled_->slot(c.fanin[1]);
        s.se = compiled_->slot(c.fanin[2]);
        s.retain = compiled_->slot(c.fanin[3]);
        break;
      case CellType::LatchL:
        s.d = compiled_->slot(c.fanin[0]);
        s.retain = compiled_->slot(c.fanin[1]);  // EN pin
        break;
      default:
        break;
    }
    seq_cells_.push_back(s);
  }
  for (const CellId input : netlist.inputs()) {
    input_by_name_.emplace(netlist.cell(input).name, netlist.cell(input).out);
  }
  domain_powered_.assign(static_cast<std::size_t>(max_domain) + 1, kAllLanes);
  domain_seq_cells_.resize(domain_powered_.size());
  for (const SeqCell& s : seq_cells_) {
    domain_seq_cells_[s.domain].push_back(s.id);
  }
  next_state_.resize(seq_cells_.size(), 0);
  write_mask_.resize(seq_cells_.size(), 0);
  slot_dirty_.assign(compiled_->slot_count(), 0);
  dirty_slots_.reserve(64);
  // Activity threshold: once a settle's worklist would exceed a quarter of
  // the instruction stream, the compare-and-schedule overhead stops paying
  // and one full sweep is cheaper.
  event_budget_ = std::max<std::size_t>(64, compiled_->instrs().size() / 4);
  schedule_ = runtime_config().schedule.value_or(Schedule::Sweep);
  reset();
}

NetId SimEngine::input_net(const std::string& port_name) const {
  const auto it = input_by_name_.find(port_name);
  RETSCAN_CHECK(it != input_by_name_.end(), "SimEngine: no input port " + port_name);
  return it->second;
}

void SimEngine::check_input_net(NetId net) const {
  RETSCAN_CHECK(net < net_values_.size(), "SimEngine::set_input: bad net");
  const CellId drv = netlist_->driver(net);
  RETSCAN_CHECK(drv != kNullCell && netlist_->cell(drv).type == CellType::Input,
                "SimEngine::set_input: net is not a primary input");
}

void SimEngine::reset() {
  std::fill(flop_state_.begin(), flop_state_.end(), LaneWord{0});
  std::fill(retention_state_.begin(), retention_state_.end(), LaneWord{0});
  std::fill(prev_retain_.begin(), prev_retain_.end(), LaneWord{0});
  std::fill(domain_powered_.begin(), domain_powered_.end(), kAllLanes);
  all_powered_ = true;
  std::fill(net_values_.begin(), net_values_.end(), LaneWord{0});
  clear_dirty();
  event_needs_full_ = true;
  rearm_auto_probe();
  commit_sequential_outputs();
  eval();
}

void SimEngine::set_schedule(Schedule schedule) {
  if (schedule == schedule_) {
    return;
  }
  schedule_ = schedule;
  clear_dirty();
  event_needs_full_ = true;
  rearm_auto_probe();
}

ScheduleTelemetry SimEngine::take_schedule_telemetry() {
  ScheduleTelemetry out = telemetry_;
  telemetry_ = ScheduleTelemetry{};
  return out;
}

void SimEngine::invalidate_schedule_state() {
  clear_dirty();
  event_needs_full_ = true;
  rearm_auto_probe();
}

void SimEngine::clear_dirty() {
  for (const std::uint32_t s : dirty_slots_) {
    slot_dirty_[s] = 0;
  }
  dirty_slots_.clear();
}

void SimEngine::rearm_auto_probe() {
  auto_use_event_ = true;
  auto_locked_ = false;
  auto_probe_left_ = kAutoProbeWindow;
  auto_event_instrs_ = 0;
  auto_capacity_ = 0;
  auto_fallbacks_ = 0;
}

void SimEngine::drive_slot(std::uint32_t slot, CellId cell, LaneWord value) {
  const LaneWord old = net_values_[slot];
  if (old != value) {
    net_values_[slot] = value;
    toggles_[cell] += static_cast<std::uint64_t>(std::popcount((old ^ value) & activity_lanes_));
    if (event_active()) {
      mark_dirty(slot);
    }
  }
}

void SimEngine::full_sweep() {
  // One compiled sweep over the flat instruction stream. Sweep-invariant
  // state is resolved once up front: the all-powered common case skips the
  // per-gate domain lookup entirely (the gated case reads a single snapshot
  // pointer), and an engine with no activity lanes (PackedSim) skips toggle
  // accounting — plain stores, no compare per gate.
  LaneWord* v = net_values_.data();
  const bool toggles = activity_lanes_ != 0;
  if (all_powered_) {
    if (toggles) {
      for (const CompiledInstr& in : compiled_->instrs()) {
        const LaneWord old = v[in.out];
        const LaneWord value = CompiledNetlist::eval_instr(in, v);
        if (old != value) {
          v[in.out] = value;
          toggles_[in.cell] +=
              static_cast<std::uint64_t>(std::popcount((old ^ value) & activity_lanes_));
        }
      }
    } else {
      for (const CompiledInstr& in : compiled_->instrs()) {
        v[in.out] = CompiledNetlist::eval_instr(in, v);
      }
    }
  } else {
    const LaneWord* clamps = domain_powered_.data();
    if (toggles) {
      for (const CompiledInstr& in : compiled_->instrs()) {
        const LaneWord old = v[in.out];
        const LaneWord value = CompiledNetlist::eval_instr(in, v) & clamps[in.domain];
        if (old != value) {
          v[in.out] = value;
          toggles_[in.cell] +=
              static_cast<std::uint64_t>(std::popcount((old ^ value) & activity_lanes_));
        }
      }
    } else {
      for (const CompiledInstr& in : compiled_->instrs()) {
        v[in.out] = CompiledNetlist::eval_instr(in, v) & clamps[in.domain];
      }
    }
  }
}

void SimEngine::eval() {
  // Cancellation point of the compiled-kernel settle loop: one relaxed
  // atomic load per settle (noise next to a sweep), so a SIGINT lands
  // within one settle even when a shard is deep in a long sequence. The
  // campaign shard loop catches Cancelled and reports the shard as not
  // completed — partial statistics stay mergeable.
  if (global_cancel_requested()) {
    throw Cancelled(CancelReason::User,
                    "SimEngine: settle loop interrupted by cancellation "
                    "request");
  }
  const std::size_t instr_count = compiled_->instrs().size();
  telemetry_.instr_capacity += instr_count;
  if (!event_active()) {
    full_sweep();
    telemetry_.full_sweeps += 1;
    telemetry_.sweep_instrs += instr_count;
    return;
  }
  if (event_needs_full_) {
    // Resync sweep: the dirty set cannot name everything stale (reset,
    // power transition, schedule switch). Not an activity signal, so the
    // Auto probe does not count it.
    full_sweep();
    clear_dirty();
    event_needs_full_ = false;
    telemetry_.full_sweeps += 1;
    telemetry_.sweep_instrs += instr_count;
    return;
  }
  // Dirty-net worklist settle. The store owns the value array: it mirrors
  // drive_slot (clamp, compare, toggle accounting) but does NOT mark dirty —
  // the worklist already propagates through the readers CSR, and re-marking
  // would poison the seed set of the next settle.
  LaneWord* v = net_values_.data();
  const bool toggles = activity_lanes_ != 0;
  const LaneWord* clamps = domain_powered_.data();
  const bool clamp = !all_powered_;
  const auto store = [&](const CompiledInstr& in) -> bool {
    LaneWord value = CompiledNetlist::eval_instr(in, v);
    if (clamp) {
      value &= clamps[in.domain];
    }
    const LaneWord old = v[in.out];
    if (old == value) {
      return false;
    }
    v[in.out] = value;
    if (toggles) {
      toggles_[in.cell] +=
          static_cast<std::uint64_t>(std::popcount((old ^ value) & activity_lanes_));
    }
    return true;
  };
  for (const std::uint32_t s : dirty_slots_) {
    slot_dirty_[s] = 0;
  }
  const CompiledNetlist::EventResult result =
      compiled_->eval_event(dirty_slots_, event_ws_, event_budget_, store);
  dirty_slots_.clear();
  telemetry_.event_instrs += result.evaluated;
  if (result.fell_back) {
    full_sweep();
    telemetry_.full_sweeps += 1;
    telemetry_.full_sweep_fallbacks += 1;
    telemetry_.sweep_instrs += instr_count;
  } else {
    telemetry_.event_sweeps += 1;
  }
  // Auto probe: measure genuine event-attempt settles, then commit.
  if (schedule_ == Schedule::Auto && !auto_locked_) {
    auto_capacity_ += instr_count;
    auto_event_instrs_ += result.evaluated + (result.fell_back ? instr_count : 0);
    auto_fallbacks_ += result.fell_back ? 1 : 0;
    if (--auto_probe_left_ == 0) {
      auto_locked_ = true;
      const bool too_dirty = auto_event_instrs_ * 8 > auto_capacity_;
      const bool too_flaky = auto_fallbacks_ * 2 > kAutoProbeWindow;
      auto_use_event_ = !(too_dirty || too_flaky);
      if (!auto_use_event_) {
        clear_dirty();
      }
    }
  }
}

void SimEngine::commit_sequential_outputs() {
  for (const SeqCell& s : seq_cells_) {
    drive_slot(s.out, s.id, flop_state_[s.id] & domain_powered_[s.domain]);
  }
  for (const auto& [slot, cell] : const1_slots_) {
    drive_slot(slot, cell, kAllLanes);
  }
}

void SimEngine::step() {
  eval();
  // Capture phase: next states from settled nets, with per-lane write masks.
  for (std::size_t i = 0; i < seq_cells_.size(); ++i) {
    const SeqCell& s = seq_cells_[i];
    const LaneWord powered = domain_powered_[s.domain];
    LaneWord next = 0;
    LaneWord write = 0;
    switch (s.type) {
      case CellType::Dff: {
        next = net_values_[s.d];
        write = powered;
        break;
      }
      case CellType::Sdff: {
        next = lane_mux(net_values_[s.se], net_values_[s.d], net_values_[s.si]);
        write = powered;
        break;
      }
      case CellType::Rdff: {
        const LaneWord retain = net_values_[s.retain];
        const LaneWord prev = prev_retain_[s.id];
        // Save: the balloon latch samples the master exactly once, on the
        // RETAIN rising edge, and only while the domain is powered. It must
        // NOT re-sample while RETAIN stays high through sleep/wake — the
        // master holds garbage then and the latch is the only good copy.
        const LaneWord save = retain & ~prev & powered;
        retention_state_[s.id] =
            (retention_state_[s.id] & ~save) | (flop_state_[s.id] & save);
        // Restore on the first powered RETAIN falling edge; functional/scan
        // capture when RETAIN has been low; hold (clock gated) while high.
        const LaneWord restore = prev & ~retain & powered;
        const LaneWord functional = ~prev & ~retain & powered;
        const LaneWord d = lane_mux(net_values_[s.se], net_values_[s.d], net_values_[s.si]);
        next = (restore & retention_state_[s.id]) | (functional & d);
        write = restore | functional;
        prev_retain_[s.id] = retain;
        break;
      }
      case CellType::LatchL: {
        next = net_values_[s.d];
        write = powered & net_values_[s.retain];  // EN
        break;
      }
      default:
        break;
    }
    next_state_[i] = next;
    write_mask_[i] = write;
    clocked_cell_edges_ +=
        static_cast<std::uint64_t>(std::popcount(powered & activity_lanes_));
  }
  for (std::size_t i = 0; i < seq_cells_.size(); ++i) {
    const CellId id = seq_cells_[i].id;
    flop_state_[id] = (flop_state_[id] & ~write_mask_[i]) | (next_state_[i] & write_mask_[i]);
  }
  ++steps_;
  commit_sequential_outputs();
  eval();
}

void SimEngine::set_flop(CellId id, LaneWord value) {
  flop_state_[id] = value;
  commit_sequential_outputs();
  eval();
}

void SimEngine::power_off(DomainId domain, Rng* rng, bool per_lane_garbage) {
  RETSCAN_CHECK(domain < domain_powered_.size(), "SimEngine::power_off: bad domain");
  RETSCAN_CHECK(domain != kAlwaysOnDomain, "SimEngine: cannot power off the always-on domain");
  domain_powered_[domain] = 0;
  all_powered_ = false;
  // The clamp change can zero nets whose inputs did not move; the dirty set
  // cannot name them, so the next settle must be a full resync sweep.
  event_needs_full_ = true;
  for (const CellId id : domain_seq_cells_[domain]) {
    // Master state is physically lost. Retention latches are always-on by
    // construction and keep their contents.
    LaneWord garbage = 0;
    if (rng != nullptr) {
      garbage = per_lane_garbage ? rng->next_u64() : lane_broadcast(rng->next_bool(0.5));
    }
    flop_state_[id] = garbage;
  }
  commit_sequential_outputs();
  eval();
}

void SimEngine::power_on(DomainId domain) {
  RETSCAN_CHECK(domain < domain_powered_.size(), "SimEngine::power_on: bad domain");
  domain_powered_[domain] = kAllLanes;
  event_needs_full_ = true;
  all_powered_ =
      std::all_of(domain_powered_.begin(), domain_powered_.end(),
                  [](LaneWord powered) { return powered == kAllLanes; });
  commit_sequential_outputs();
  eval();
}

bool SimEngine::domain_powered(DomainId domain) const {
  RETSCAN_CHECK(domain < domain_powered_.size(), "SimEngine::domain_powered: bad domain");
  return domain_powered_[domain] != 0;
}

void SimEngine::reset_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  steps_ = 0;
  clocked_cell_edges_ = 0;
}

}  // namespace retscan
