#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/techlib.hpp"
#include "sim/engine.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace retscan {

/// Dynamic-activity summary accumulated by the simulator between calls to
/// reset_activity(). Energy is computed against a TechLibrary: every output
/// toggle costs the cell's switching energy, and every clock edge costs each
/// powered sequential cell a fraction of its switching energy (clock pin and
/// internal clock buffering), which is what makes scan-shift power dominated
/// by the chain flops — the effect behind the paper's observation that
/// Hamming and CRC monitors differ by only 20-40% in power.
struct ActivityReport {
  std::uint64_t steps = 0;
  std::uint64_t output_toggles = 0;
  double dynamic_energy_pj = 0.0;
  /// Average power in mW given the number of steps and a clock period (ns).
  /// Returns 0 for an empty report or a non-positive clock period.
  double average_power_mw(double clock_period_ns) const;
};

/// Two-phase cycle-accurate simulator for a Netlist — the scalar facade of
/// the bit-parallel SimEngine (see sim/engine.hpp, where the cycle and
/// power-gating semantics are implemented once and shared with PackedSim).
/// Values are lane-replicated so every engine lane computes the same
/// circuit; activity is accounted on lane 0 only, keeping toggle and energy
/// numbers identical to a one-value-per-net simulator.
///
/// Each step(): (1) combinational cells evaluate in levelized order from the
/// current sequential states and primary inputs, (2) sequential cells capture
/// their next state, (3) states commit. Latches (LatchL) update at the step
/// boundary like enabled flops; this keeps evaluation acyclic and is
/// documented behaviour for the parity-storage elements.
///
/// Power gating semantics (the physical mechanism the paper protects
/// against):
///  * power_off(domain): master flip-flop state in that domain is lost —
///    replaced with garbage from the supplied Rng (or zeros if none). While a
///    domain is off, outputs of all its cells read 0, modelling isolation
///    clamps at the domain boundary.
///  * Rdff retention flip-flops (Fig. 1): the slave balloon latch is
///    always-on. It samples the master once, on the RETAIN rising edge (the
///    save event); on the first powered clock edge with RETAIN falling 1->0
///    the master is restored from the latch. RETAIN may stay asserted for
///    arbitrarily many cycles in between (sleep + wake settling). Corruption of retention latches by wake-up
///    rush current is injected by the power model (src/power) via
///    set_retention_state()/flip_retention().
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  const Netlist& netlist() const { return engine_.netlist(); }

  // --- stimulus -----------------------------------------------------------
  void set_input(const std::string& port_name, bool value);
  void set_input(NetId net, bool value);
  bool input(NetId net) const;

  /// Zero all flip-flops, latches and inputs; powers all domains on.
  void reset();

  /// Combinational settle only (no clock edge). Mostly for tests.
  void eval();

  /// One full clock cycle: eval, capture, commit.
  void step();
  /// Convenience: `count` clock cycles.
  void step_n(std::size_t count);

  // --- observation ----------------------------------------------------------
  bool net_value(NetId net) const;
  bool output(const std::string& port_name) const;

  bool flop_state(CellId flop) const;
  /// Write one flop's state and settle — like power_off/power_on, all
  /// combinational nets are consistent when this returns. Writing many flops
  /// one by one pays one settle each; use a batch setter instead.
  void set_flop_state(CellId flop, bool value);
  /// States of all Dff/Sdff/Rdff cells in netlist.flops() order.
  BitVec flop_states() const;
  void set_flop_states(const BitVec& states);
  /// Batch-write a subset of flops (one commit + settle for the whole set).
  void set_flop_states(const std::vector<std::pair<CellId, bool>>& updates);

  /// Retention (balloon) latch content of an Rdff.
  bool retention_state(CellId flop) const;
  void set_retention_state(CellId flop, bool value);
  void flip_retention(CellId flop);
  /// Retention latch contents of all Rdff cells, in netlist.flops() order
  /// restricted to Rdff entries.
  BitVec retention_states() const;

  // --- power domains --------------------------------------------------------
  /// Cut power: master state in `domain` is destroyed (randomized via rng,
  /// zeroed if rng == nullptr); outputs clamp to 0 until power_on.
  void power_off(DomainId domain, Rng* rng = nullptr);
  void power_on(DomainId domain);
  bool domain_powered(DomainId domain) const;

  // --- activity / power ------------------------------------------------------
  void reset_activity();
  /// Report accumulated since the last reset_activity().
  ActivityReport activity(const TechLibrary& tech) const;

  // --- evaluation schedule --------------------------------------------------
  /// Settle scheduling (sweep vs dirty-net worklist, see sim/schedule.hpp);
  /// values, toggle counts and energy are bit-identical under every mode.
  void set_schedule(Schedule schedule) { engine_.set_schedule(schedule); }
  Schedule schedule() const { return engine_.schedule(); }
  ScheduleTelemetry take_schedule_telemetry() { return engine_.take_schedule_telemetry(); }
  void invalidate_schedule_state() { engine_.invalidate_schedule_state(); }

 private:
  SimEngine engine_;

  /// Fraction of a sequential cell's switching energy charged per clock edge
  /// even when its output does not toggle (clock pin + internal buffers).
  static constexpr double kClockPinEnergyFraction = 0.4;
};

}  // namespace retscan
