#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/eval_kernel.hpp"
#include "util/error.hpp"

namespace retscan {

/// Opcode of one compiled combinational instruction. Only value-producing
/// combinational gates are compiled — constants and sequential outputs are
/// sources (written by the caller), Output port cells produce nothing.
enum class CompiledOp : std::uint8_t {
  Buf,
  Not,
  And2,
  Or2,
  Xor2,
  Nand2,
  Nor2,
  Xnor2,
  Mux2,
};

/// One packed gate record of the compiled instruction stream. Operands are
/// value *slots* (nets renumbered in evaluation order, see CompiledNetlist);
/// unused operand fields are zero and never read for the instruction's op.
/// 24 bytes per gate, laid out flat, replaces the seed's pointer-chasing
/// walk over `Cell` objects (heap `std::vector<NetId> fanin`, `std::string
/// name`) in every simulation hot loop.
struct CompiledInstr {
  std::uint32_t in0 = 0;  // value slots
  std::uint32_t in1 = 0;
  std::uint32_t in2 = 0;
  std::uint32_t out = 0;     // value slot this instruction drives
  CellId cell = kNullCell;   // originating cell (activity accounting, faults)
  DomainId domain = kAlwaysOnDomain;
  CompiledOp op = CompiledOp::Buf;
};

/// Compiled simulation core: the combinational portion of a Netlist lowered
/// once into a flat, cache-friendly instruction stream.
///
///  * Nets are renumbered into *slots* in evaluation order — source nets
///    (primary inputs, constants, sequential outputs, dangling nets) first,
///    then each compiled gate's output in topological order. Every
///    instruction therefore only reads slots below the one it writes, and a
///    full sweep walks the value array almost monotonically.
///  * `eval_full` / `eval_full_clamped` evaluate the whole stream (the
///    SimEngine settle and the fault-frame good machine).
///  * `eval_event` evaluates only the dirty set: a worklist seeded from
///    changed source slots and propagated level-by-level through the
///    readers CSR, with caller-side change detection deciding what keeps
///    propagating. Bit-identical to `eval_full` because instructions are
///    pure functions of their operands — an instruction with no changed
///    operand recomputes its current output, so skipping it is exact.
///  * `build_cone` extracts the fanout cone of one net — or of any dirty
///    set of nets — as the instruction slice it can disturb plus the
///    touched-slot undo list, which is what makes incremental per-fault
///    simulation O(cone) instead of O(circuit).
///
/// A CompiledNetlist is self-contained (no back-pointer into the Netlist),
/// so the shared instance cached by Netlist::compiled() stays valid across
/// netlist moves and copies; it describes the structure as of lowering time
/// and is discarded by the netlist on any structural mutation.
class CompiledNetlist {
 public:
  explicit CompiledNetlist(const Netlist& netlist);

  /// One slot per net of the source netlist.
  std::size_t slot_count() const { return slot_of_net_.size(); }
  std::uint32_t slot(NetId net) const {
    RETSCAN_CHECK(net < slot_of_net_.size(), "CompiledNetlist::slot: bad net");
    return slot_of_net_[net];
  }
  NetId net_of_slot(std::uint32_t slot) const {
    RETSCAN_CHECK(slot < net_of_slot_.size(), "CompiledNetlist: bad slot");
    return net_of_slot_[slot];
  }

  /// The flat instruction stream in topological evaluation order.
  const std::vector<CompiledInstr>& instrs() const { return instrs_; }

  /// Number of power domains referenced by any cell (>= 1).
  std::size_t domain_count() const { return domain_count_; }

  /// Topological level of instruction `i` (0 = all operands are source
  /// slots). Within a level, instructions are independent: they write
  /// distinct slots and read only strictly lower levels.
  std::uint32_t instr_level(std::uint32_t i) const { return instr_level_[i]; }
  /// Number of distinct instruction levels (longest combinational path).
  std::size_t level_count() const { return level_count_; }

  /// Evaluate one instruction against a slot-indexed value array. Lanes is
  /// either LaneWord (64 lanes, the cycle engines) or LaneBlock
  /// (kLaneBlockBits lanes, the wide sweep/fault datapath); both share this
  /// one kernel so gate semantics cannot diverge between widths.
  template <typename Lanes>
  static Lanes eval_instr(const CompiledInstr& in, const Lanes* v) {
    switch (in.op) {
      case CompiledOp::Buf: return v[in.in0];
      case CompiledOp::Not: return ~v[in.in0];
      case CompiledOp::And2: return v[in.in0] & v[in.in1];
      case CompiledOp::Or2: return v[in.in0] | v[in.in1];
      case CompiledOp::Xor2: return v[in.in0] ^ v[in.in1];
      case CompiledOp::Nand2: return ~(v[in.in0] & v[in.in1]);
      case CompiledOp::Nor2: return ~(v[in.in0] | v[in.in1]);
      case CompiledOp::Xnor2: return ~(v[in.in0] ^ v[in.in1]);
      case CompiledOp::Mux2: return lane_mux(v[in.in0], v[in.in1], v[in.in2]);
    }
    return Lanes{};
  }

  /// Full-sweep settle: values must hold slot_count() lane words with every
  /// source slot already written.
  void eval_full(LaneWord* values) const;
  /// Block-wide full sweep: values holds slot_count() LaneBlocks, lane-major
  /// and contiguous, so one sweep walks kLaneBlockBits lanes per slot.
  void eval_full(LaneBlock* values) const;
  /// Full-sweep settle with power-domain clamping: `domain_clamps` holds one
  /// word per domain (~0 = powered, 0 = isolation-clamped to 0).
  void eval_full_clamped(LaneWord* values, const LaneWord* domain_clamps) const;
  /// Block-wide clamped sweep; the per-domain clamp word applies uniformly
  /// to every word of each block.
  void eval_full_clamped(LaneBlock* values, const LaneWord* domain_clamps) const;

  /// Reusable scratch state for `eval_event`: per-level instruction buckets
  /// plus a scheduled flag per instruction. Both are left empty/zero between
  /// calls, so one workspace serves any number of settles; allocation
  /// happens once on first use.
  struct EventWorkspace {
    std::vector<std::vector<std::uint32_t>> levels;
    std::vector<std::uint8_t> scheduled;
    bool ready = false;
  };
  void init_event_workspace(EventWorkspace& ws) const {
    ws.levels.assign(level_count_, {});
    ws.scheduled.assign(instrs_.size(), 0);
    ws.ready = true;
  }

  struct EventResult {
    /// Instructions evaluated by the worklist (including partial work of a
    /// settle that fell back — those values are final either way).
    std::size_t evaluated = 0;
    /// True when the worklist crossed `budget` and the caller must finish
    /// the settle with a full sweep.
    bool fell_back = false;
  };

  /// Dirty-set settle: seed the worklist with the readers of `dirty_slots`
  /// (source slots whose values changed since the last settle), then drain
  /// level by level. `store(instr) -> bool` owns the value array: it
  /// evaluates the instruction (applying any clamping/activity accounting)
  /// and returns whether the output value changed; only changed outputs
  /// propagate. Level order guarantees every instruction sees final operand
  /// values, so even the partial work of a fallen-back settle is exact and
  /// a subsequent full sweep recomputes identical values.
  template <typename Store>
  EventResult eval_event(const std::vector<std::uint32_t>& dirty_slots,
                         EventWorkspace& ws, std::size_t budget,
                         Store&& store) const {
    if (!ws.ready) {
      init_event_workspace(ws);
    }
    EventResult result;
    const auto schedule_readers = [&](std::uint32_t s) {
      for (std::uint32_t r = reader_offsets_[s]; r < reader_offsets_[s + 1]; ++r) {
        const std::uint32_t i = reader_instrs_[r];
        if (!ws.scheduled[i]) {
          ws.scheduled[i] = 1;
          ws.levels[instr_level_[i]].push_back(i);
        }
      }
    };
    for (const std::uint32_t s : dirty_slots) {
      schedule_readers(s);
    }
    for (std::size_t lvl = 0; lvl < ws.levels.size(); ++lvl) {
      std::vector<std::uint32_t>& bucket = ws.levels[lvl];
      if (bucket.empty()) {
        continue;
      }
      if (result.evaluated + bucket.size() > budget) {
        // Clear the remaining schedule so the workspace is reusable; work
        // already done below this level is final and need not be undone.
        for (std::size_t l = lvl; l < ws.levels.size(); ++l) {
          for (const std::uint32_t i : ws.levels[l]) {
            ws.scheduled[i] = 0;
          }
          ws.levels[l].clear();
        }
        result.fell_back = true;
        return result;
      }
      // schedule_readers only appends to strictly higher levels (a reader of
      // this bucket's outputs has level > lvl), so iterating by range is
      // safe while the worklist grows.
      for (const std::uint32_t i : bucket) {
        ws.scheduled[i] = 0;
        if (store(instrs_[i])) {
          schedule_readers(instrs_[i].out);
        }
      }
      result.evaluated += bucket.size();
      bucket.clear();
    }
    return result;
  }

  /// Fanout cone of a dirty set: everything the given source nets can
  /// disturb within the combinational frame. The single-net form is the
  /// stuck-at fault cone of PR 3.
  struct Cone {
    /// Source slots in the order the sources were given (one per net; the
    /// caller forces these before replay).
    std::vector<std::uint32_t> source_slots;
    /// Instruction indices downstream of any source, ascending (topological).
    std::vector<std::uint32_t> instrs;
    /// Undo list: the source slots plus every cone output slot — restoring
    /// exactly these returns a workspace to the good-machine values.
    std::vector<std::uint32_t> touched_slots;
  };
  Cone build_cone(NetId source) const;
  Cone build_cone(const std::vector<NetId>& sources) const;

  /// The retained reference interpreter: the seed's per-`Cell` evaluation
  /// walk (combinational_order + eval_comb_word over NetId-indexed values,
  /// Output cells skipped, no clamping). Kept as the independent oracle for
  /// the compiled kernel in equivalence tests and as the interpreted
  /// baseline in bench_engine.
  static void reference_eval(const Netlist& netlist, std::vector<LaneWord>& values_by_net);

 private:
  /// Artifact deserialization (sim/artifact_store.cpp) reconstructs an
  /// instance field by field from a validated on-disk image — the one
  /// component allowed to bypass the lowering constructor.
  CompiledNetlist() = default;
  friend struct CompiledArtifactCodec;

  std::vector<std::uint32_t> slot_of_net_;
  std::vector<NetId> net_of_slot_;
  std::vector<CompiledInstr> instrs_;
  std::vector<std::uint32_t> instr_level_;
  std::size_t level_count_ = 0;
  std::size_t domain_count_ = 1;
  // Readers CSR: reader_instrs_[reader_offsets_[s] .. reader_offsets_[s+1])
  // are the instruction indices whose operands include slot s.
  std::vector<std::uint32_t> reader_offsets_;
  std::vector<std::uint32_t> reader_instrs_;
};

}  // namespace retscan
