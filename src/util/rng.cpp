#include "util/rng.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace retscan {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RETSCAN_CHECK(bound > 0, "Rng::next_below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t value = next_u64();
    if (value >= threshold) {
      return value % bound;
    }
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability) {
  return next_double() < probability;
}

BitVec Rng::next_bits(std::size_t size) {
  BitVec bits(size);
  for (std::size_t i = 0; i < size; i += 64) {
    const std::size_t count = std::min<std::size_t>(64, size - i);
    bits.from_uint(i, count, next_u64());
  }
  return bits;
}

std::uint64_t Rng::derive_stream(std::uint64_t seed, std::uint64_t stream) {
  // Two dependent SplitMix64 rounds: the first whitens the stream index so
  // that consecutive shard indices land far apart, the second mixes it
  // into the campaign seed. Zero is a fine input and never a fixed point.
  std::uint64_t state = seed ^ (stream * 0xd1342543de82ef95ull);
  const std::uint64_t first = splitmix64(state);
  state ^= first ^ stream;
  return splitmix64(state);
}

std::vector<std::size_t> Rng::sample_distinct(std::size_t population, std::size_t count) {
  RETSCAN_CHECK(count <= population, "Rng::sample_distinct: count > population");
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  // Floyd's algorithm: for j in [population-count, population), pick t in
  // [0, j]; insert t unless already chosen, else insert j.
  for (std::size_t j = population - count; j < population; ++j) {
    const std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace retscan
