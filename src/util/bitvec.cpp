#include "util/bitvec.hpp"

#include <bit>

#include "util/error.hpp"

namespace retscan {

namespace {
std::size_t words_for(std::size_t bits) {
  return (bits + BitVec::kWordBits - 1) / BitVec::kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t size, bool value) : size_(size) {
  words_.assign(words_for(size), value ? ~Word{0} : Word{0});
  clear_trailing();
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec result(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    RETSCAN_CHECK(c == '0' || c == '1', "BitVec::from_string: invalid character");
    result.set(i, c == '1');
  }
  return result;
}

void BitVec::check_index(std::size_t index) const {
  RETSCAN_CHECK(index < size_, "BitVec index out of range");
}

void BitVec::clear_trailing() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

bool BitVec::get(std::size_t index) const {
  check_index(index);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitVec::set(std::size_t index, bool value) {
  check_index(index);
  const Word mask = Word{1} << (index % kWordBits);
  if (value) {
    words_[index / kWordBits] |= mask;
  } else {
    words_[index / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t index) {
  check_index(index);
  words_[index / kWordBits] ^= Word{1} << (index % kWordBits);
}

void BitVec::fill(bool value) {
  for (Word& w : words_) {
    w = value ? ~Word{0} : Word{0};
  }
  clear_trailing();
}

void BitVec::resize(std::size_t size) {
  size_ = size;
  words_.resize(words_for(size), Word{0});
  clear_trailing();
}

void BitVec::push_back(bool value) {
  resize(size_ + 1);
  set(size_ - 1, value);
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (const Word w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> indices;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      indices.push_back(wi * kWordBits + static_cast<std::size_t>(bit));
      w &= w - 1;
    }
  }
  return indices;
}

BitVec BitVec::slice(std::size_t offset, std::size_t count) const {
  RETSCAN_CHECK(offset + count <= size_, "BitVec::slice out of range");
  BitVec result(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.set(i, get(offset + i));
  }
  return result;
}

void BitVec::splice(std::size_t offset, const BitVec& other) {
  RETSCAN_CHECK(offset + other.size() <= size_, "BitVec::splice out of range");
  for (std::size_t i = 0; i < other.size(); ++i) {
    set(offset + i, other.get(i));
  }
}

BitVec& BitVec::operator^=(const BitVec& other) {
  RETSCAN_CHECK(size_ == other.size_, "BitVec size mismatch in ^=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  RETSCAN_CHECK(size_ == other.size_, "BitVec size mismatch in &=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  RETSCAN_CHECK(size_ == other.size_, "BitVec size mismatch in |=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  RETSCAN_CHECK(size_ == other.size_, "BitVec size mismatch in hamming_distance");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::string BitVec::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) {
      out[i] = '1';
    }
  }
  return out;
}

std::uint64_t BitVec::to_uint(std::size_t offset, std::size_t count) const {
  RETSCAN_CHECK(count <= 64, "BitVec::to_uint: count > 64");
  RETSCAN_CHECK(offset + count <= size_, "BitVec::to_uint out of range");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value |= static_cast<std::uint64_t>(get(offset + i)) << i;
  }
  return value;
}

void BitVec::from_uint(std::size_t offset, std::size_t count, std::uint64_t value) {
  RETSCAN_CHECK(count <= 64, "BitVec::from_uint: count > 64");
  RETSCAN_CHECK(offset + count <= size_, "BitVec::from_uint out of range");
  for (std::size_t i = 0; i < count; ++i) {
    set(offset + i, (value >> i) & 1u);
  }
}

std::vector<std::uint64_t> pack_lanes(const std::vector<BitVec>& rows) {
  RETSCAN_CHECK(rows.size() <= 64, "pack_lanes: more than 64 lanes");
  const std::size_t width = rows.empty() ? 0 : rows[0].size();
  std::vector<std::uint64_t> words(width, 0);
  for (std::size_t lane = 0; lane < rows.size(); ++lane) {
    RETSCAN_CHECK(rows[lane].size() == width, "pack_lanes: row size mismatch");
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (std::size_t i = 0; i < width; ++i) {
      if (rows[lane].get(i)) {
        words[i] |= bit;
      }
    }
  }
  return words;
}

std::vector<BitVec> unpack_lanes(const std::vector<std::uint64_t>& words,
                                 std::size_t lane_count) {
  RETSCAN_CHECK(lane_count <= 64, "unpack_lanes: more than 64 lanes");
  std::vector<BitVec> rows(lane_count, BitVec(words.size()));
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i] & bit) {
        rows[lane].set(i, true);
      }
    }
  }
  return rows;
}

std::vector<LaneBlock> pack_lane_blocks(const std::vector<BitVec>& rows) {
  RETSCAN_CHECK(rows.size() <= kLaneBlockBits,
                "pack_lane_blocks: more than kLaneBlockBits lanes");
  const std::size_t width = rows.empty() ? 0 : rows[0].size();
  std::vector<LaneBlock> blocks(width, LaneBlock{});
  for (std::size_t lane = 0; lane < rows.size(); ++lane) {
    RETSCAN_CHECK(rows[lane].size() == width, "pack_lane_blocks: row size mismatch");
    const std::size_t word = lane / kLaneCount;
    const std::uint64_t bit = std::uint64_t{1} << (lane % kLaneCount);
    for (std::size_t i = 0; i < width; ++i) {
      if (rows[lane].get(i)) {
        blocks[i].w[word] |= bit;
      }
    }
  }
  return blocks;
}

std::vector<BitVec> unpack_lane_blocks(const std::vector<LaneBlock>& blocks,
                                       std::size_t lane_count) {
  RETSCAN_CHECK(lane_count <= kLaneBlockBits,
                "unpack_lane_blocks: more than kLaneBlockBits lanes");
  std::vector<BitVec> rows(lane_count, BitVec(blocks.size()));
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    const std::size_t word = lane / kLaneCount;
    const std::uint64_t bit = std::uint64_t{1} << (lane % kLaneCount);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (blocks[i].w[word] & bit) {
        rows[lane].set(i, true);
      }
    }
  }
  return rows;
}

}  // namespace retscan
