#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "util/error.hpp"

namespace retscan {

/// Why a cooperative cancellation fired.
enum class CancelReason : std::uint8_t {
  None,     ///< still live
  User,     ///< request_cancel() / SIGINT / SIGTERM
  Deadline, ///< the token's deadline_ms budget elapsed
};

/// How a campaign ended. Complete is the only status on which the
/// bit-identical statistics contract holds for the *whole* trial count; the
/// other two carry the partial statistics of the shards that finished (and,
/// with a checkpoint journal, everything needed to resume bit-exactly).
enum class CampaignStatus : std::uint8_t {
  Complete,  ///< every shard ran (or was resumed from the journal)
  Cancelled, ///< interrupted by a user cancellation request
  Timeout,   ///< interrupted by an expired deadline_ms budget
};

const char* to_string(CancelReason reason);
const char* to_string(CampaignStatus status);

/// Thrown at cancellation points (CancelToken::check, the SimEngine settle
/// loop) when a cooperative cancellation is observed mid-work. Campaign
/// shard loops catch it and convert the shard into "not completed" rather
/// than an error — cancellation is an outcome, not a failure.
class Cancelled : public Error {
 public:
  Cancelled(CancelReason reason, const std::string& message)
      : Error(message), reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// Cooperative cancellation handle shared between a campaign driver and the
/// shard loops running it. Copies share state (shared_ptr). A token also
/// observes the process-global cancel flag, so one SIGINT handler stops
/// every campaign in flight. All queries are thread-safe and cheap enough
/// for per-shard polling.
class CancelToken {
 public:
  CancelToken();

  /// Request cancellation (idempotent, thread-safe, not signal-safe — use
  /// request_global_cancel() from signal handlers).
  void request_cancel();

  /// Arm a deadline `ms` milliseconds from now; the token reports
  /// CancelReason::Deadline once it elapses. Call before handing the token
  /// to workers.
  void set_deadline_ms(std::uint64_t ms);

  /// Why the token is cancelled — CancelReason::None while still live.
  CancelReason why() const;
  bool cancelled() const { return why() != CancelReason::None; }

  /// Throw Cancelled when the token is cancelled; no-op otherwise.
  void check() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Process-global cancellation flag. request_global_cancel() is
/// async-signal-safe (a relaxed atomic store), which is why the CLI's
/// SIGINT/SIGTERM handlers drive this instead of a CancelToken. Observed by
/// every CancelToken and by the SimEngine settle loop (the long-running
/// compiled-kernel inner loop a per-shard poll cannot reach into).
bool global_cancel_requested() noexcept;
void request_global_cancel() noexcept;
/// Clear the flag (tests; a CLI that handled one cancellation).
void reset_global_cancel() noexcept;

}  // namespace retscan
