#pragma once

namespace retscan {

/// Deterministic fault injection for tests, driven by the RETSCAN_FAILPOINTS
/// environment variable — the harness that turns the library's error paths
/// into first-class tested code (journal short-writes, throwing shards,
/// killed campaigns) without recompiling.
///
/// Syntax (';' or ',' separated entries):
///
///     RETSCAN_FAILPOINTS="site=action[@N];site2=action2"
///
/// `site` is a compiled-in name (see docs/architecture.md for the list:
/// shard.run, pool.dispatch, journal.flush, journal.load). `@N` fires the
/// action on the N-th hit of that site only (1-based, one-shot); omitted it
/// defaults to `@1`; `@every` fires on every hit. Actions:
///
///   * `throw`      — throw retscan::Error("failpoint <site>")
///   * `delay:<ms>` — sleep for <ms> milliseconds
///   * `kill`       — raise(SIGKILL): die exactly like an OOM-kill would
///   * `shortwrite` — report FailAction::ShortWrite to the call site, which
///                    truncates its write (journal I/O sites only)
///
/// Unknown sites are fine (they simply never fire); malformed entries and
/// unknown actions warn once on stderr and are ignored, matching the strict
/// RETSCAN_* env convention. With the variable unset the fast path is one
/// relaxed atomic load per site hit.
enum class FailAction {
  None,       ///< nothing armed (or the armed hit count not reached)
  ShortWrite, ///< truncate the write in progress (journal sites)
};

/// Execute the failpoint named `site`: counts the hit, then throws, sleeps,
/// or kills per the armed action. Returns ShortWrite for an armed
/// `shortwrite` action (the only action delegated back to the caller).
FailAction failpoint(const char* site);

/// Re-read RETSCAN_FAILPOINTS and reset all hit counters. Tests that arm
/// failpoints via setenv() mid-process call this, mirroring
/// runtime_config_refresh() for the RETSCAN_* knobs.
void failpoints_refresh();

/// True when any failpoint is armed (cheap; the same fast-path check
/// failpoint() itself uses).
bool failpoints_enabled();

}  // namespace retscan
