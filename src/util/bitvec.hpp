#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/lanes.hpp"

namespace retscan {

/// Dynamically sized bit vector with word-level storage.
///
/// BitVec is the common currency for register states, scan-chain contents,
/// codewords and parity streams throughout the library. Bit 0 is the least
/// significant bit of word 0. All indexed accessors bounds-check and throw
/// retscan::Error on violation.
class BitVec {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVec() = default;
  /// Construct with `size` bits, all initialized to `value`.
  explicit BitVec(std::size_t size, bool value = false);

  /// Parse from a string of '0'/'1' characters; index 0 is the *leftmost*
  /// character so that "1011" reads naturally as bit sequence 1,0,1,1.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t index) const;
  void set(std::size_t index, bool value);
  void flip(std::size_t index);

  /// Set all bits to `value` without changing size.
  void fill(bool value);
  /// Resize, new bits (if any) initialized to false.
  void resize(std::size_t size);
  /// Append a single bit at the end.
  void push_back(bool value);

  /// Number of set bits.
  std::size_t popcount() const;
  /// True if any bit is set.
  bool any() const { return popcount() > 0; }
  /// XOR-reduce all bits (overall parity).
  bool parity() const { return (popcount() & 1u) != 0; }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// Extract `count` bits starting at `offset` as a new vector.
  BitVec slice(std::size_t offset, std::size_t count) const;
  /// Overwrite bits [offset, offset+other.size()) with `other`.
  void splice(std::size_t offset, const BitVec& other);

  /// Bitwise operators require equal sizes.
  BitVec& operator^=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  friend BitVec operator^(BitVec lhs, const BitVec& rhs) { return lhs ^= rhs; }
  friend BitVec operator&(BitVec lhs, const BitVec& rhs) { return lhs &= rhs; }
  friend BitVec operator|(BitVec lhs, const BitVec& rhs) { return lhs |= rhs; }

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// Number of positions at which two equal-sized vectors differ.
  std::size_t hamming_distance(const BitVec& other) const;

  /// Render as '0'/'1' string, index 0 leftmost (inverse of from_string).
  std::string to_string() const;

  /// Interpret bits [offset, offset+count) as an unsigned integer,
  /// bit `offset` being the LSB. count must be <= 64.
  std::uint64_t to_uint(std::size_t offset, std::size_t count) const;
  /// Store the low `count` bits of `value` at [offset, offset+count).
  void from_uint(std::size_t offset, std::size_t count, std::uint64_t value);

  /// Raw word storage (low word first); trailing bits beyond size() are zero.
  const std::vector<Word>& words() const { return words_; }

 private:
  void check_index(std::size_t index) const;
  void clear_trailing();

  std::vector<Word> words_;
  std::size_t size_ = 0;
};

/// Lane transposition helpers for the bit-parallel simulation engine.
///
/// A "lane word" holds bit `b` of 64 independent simulation slots: lane b of
/// word i is bit i of slot b's BitVec. pack_lanes transposes up to 64
/// equal-sized BitVecs (one per lane) into one lane word per bit position;
/// unpack_lanes is the inverse. These are the conversion points between the
/// per-pattern BitVec world (ATPG, scan I/O, codecs) and the word-parallel
/// engine.
std::vector<std::uint64_t> pack_lanes(const std::vector<BitVec>& rows);
std::vector<BitVec> unpack_lanes(const std::vector<std::uint64_t>& words,
                                 std::size_t lane_count);

/// Block-wide transposition: up to kLaneBlockBits equal-sized BitVecs (one
/// per lane) become one LaneBlock per bit position — the load path of the
/// wide compiled sweep. Lane L of a block lives in word L / 64, bit L % 64.
std::vector<LaneBlock> pack_lane_blocks(const std::vector<BitVec>& rows);
std::vector<BitVec> unpack_lane_blocks(const std::vector<LaneBlock>& blocks,
                                       std::size_t lane_count);

}  // namespace retscan
