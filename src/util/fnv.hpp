#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace retscan {

/// FNV-1a 64 accumulator — the repo-wide content-fingerprint primitive
/// (campaign fingerprints, compiled-netlist artifact keys, session-cache
/// keys). Every field is hashed through a fixed-width integer
/// representation so a fingerprint is stable across platforms with the same
/// integer model; it is an identity check, not a cryptographic hash.
struct Fnv1a {
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t hash = kOffset;

  void add(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xFF;
      hash *= kPrime;
    }
  }
  void add_double(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    add(bits);
  }
  void add_text(std::string_view text) {
    add(text.size());
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= kPrime;
    }
  }
  void add_bytes(const void* data, std::size_t size) {
    add(size);
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= kPrime;
    }
  }
};

}  // namespace retscan
