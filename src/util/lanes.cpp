#include "util/lanes.hpp"

namespace retscan {

bool lane_block_simd_compiled() { return RETSCAN_LANE_BLOCK_AVX2 != 0; }

}  // namespace retscan
