#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace retscan {

class CancelToken;

/// Small work-stealing thread pool: one task deque per worker, owners pop
/// from the back (LIFO, cache-warm), thieves steal from the front (FIFO,
/// oldest work first). This is the execution substrate of the
/// retscan::parallel campaign layer — shards of a statistical campaign are
/// submitted as independent tasks and idle workers steal from loaded ones,
/// so uneven shard costs (e.g. fault shards with early drops) still fill
/// every core.
///
/// Determinism note: the pool schedules; it never sequences results. All
/// campaign-level reductions happen in shard order outside the pool, so
/// the same seed produces bit-identical campaign statistics at any thread
/// count.
class ThreadPool {
 public:
  /// threads == 0 → default_thread_count() (RETSCAN_THREADS env override,
  /// else std::thread::hardware_concurrency()).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Fire-and-forget task. Tasks must not throw — wrap throwing work via
  /// submit() or parallel_for(), which capture and propagate exceptions.
  void enqueue(std::function<void()> task);

  /// Task with a result (or a propagated exception) via std::future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run body(0) .. body(count-1) across the pool and block until every
  /// submitted body has finished or been skipped (the pool is always left
  /// clean — no deadlock, no orphaned tasks). A throwing body cancels the
  /// bodies that have not started yet, and of the bodies that did throw,
  /// the one with the LOWEST index is rethrown here — deterministic by
  /// shard id, never by wall clock. If `cancel` is non-null, bodies are
  /// likewise skipped once the token reports cancelled (no exception: the
  /// caller owns the token and inspects it). Runs inline when called from a
  /// pool worker (no nested deadlock) or when the pool is effectively
  /// serial, with the same skip-after-error/cancel semantics.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    const CancelToken* cancel = nullptr);

  /// True when the calling thread is one of this pool's workers — callers
  /// that would block waiting on pool tasks (parallel_for, FairScheduler)
  /// must run inline instead, or a worker deadlocks waiting on itself.
  bool on_worker_thread() const;

  /// RETSCAN_THREADS env override (strictly parsed), else
  /// hardware_concurrency(), else 1.
  static unsigned default_thread_count();

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::thread thread;
  };

  bool try_pop(std::size_t index, std::function<void()>& task);
  bool try_steal(std::size_t thief, std::function<void()>& task);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace retscan
