#include "util/error.hpp"

#include <sstream>

namespace retscan::detail {

void throw_error(const char* file, int line, const std::string& message) {
  std::ostringstream oss;
  oss << message << " (" << file << ":" << line << ")";
  throw Error(oss.str());
}

}  // namespace retscan::detail
