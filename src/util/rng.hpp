#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace retscan {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All stochastic behaviour in the library (stimulus generation,
/// corruption sampling, power-off state loss) flows through this type so that
/// every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Single Bernoulli(p) trial.
  bool next_bool(double probability);

  /// Uniformly random bit vector of the given size.
  BitVec next_bits(std::size_t size);

  /// Sample `count` distinct indices from [0, population) without
  /// replacement (Floyd's algorithm). count must be <= population.
  std::vector<std::size_t> sample_distinct(std::size_t population, std::size_t count);

  /// Derive the seed of an independent child stream: (seed, stream) pairs
  /// map to well-separated 64-bit seeds via two SplitMix64 rounds. This is
  /// how parallel campaigns split one campaign seed into per-shard Rng
  /// streams — shard results depend only on (seed, shard index), never on
  /// the thread that ran the shard.
  static std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t state_[4];
};

}  // namespace retscan
