#include "util/thread_pool.hpp"

#include "retscan/runtime.hpp"
#include "util/cancel.hpp"
#include "util/failpoint.hpp"

namespace retscan {

namespace {
/// Which pool (if any) owns the current thread — used to run nested
/// parallel_for calls inline instead of deadlocking a worker on itself.
thread_local const ThreadPool* tl_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const {
  return tl_pool == this;
}

unsigned ThreadPool::default_thread_count() {
  // Env parsing (and its strict-parse warning) lives in retscan::runtime —
  // the one interpreter of RETSCAN_* for the whole library.
  return runtime_threads();
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = threads == 0 ? default_thread_count() : threads;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < count; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  failpoint("pool.dispatch");
  const std::size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  // Increment pending_ BEFORE the task becomes stealable, so a concurrent
  // pop can never drive the counter below zero; holding idle_mutex_ for the
  // increment pairs with the cv predicate check so the wakeup can't be
  // missed. A worker waking between the two blocks spins once harmlessly.
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(workers_[index]->mutex);
    workers_[index]->queue.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& task) {
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) {
    return false;
  }
  task = std::move(worker.queue.back());
  worker.queue.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, std::function<void()>& task) {
  for (std::size_t hop = 1; hop < workers_.size(); ++hop) {
    Worker& victim = *workers_[(thief + hop) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  std::function<void()> task;
  for (;;) {
    if (try_pop(index, task) || try_steal(index, task)) {
      try {
        task();
      } catch (...) {
        // enqueue() tasks are documented non-throwing; submit()/parallel_for()
        // wrappers capture their own exceptions. Swallow rather than
        // std::terminate so one misbehaved task cannot take the pool down.
      }
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              const CancelToken* cancel) {
  if (count == 0) {
    return;
  }
  if (tl_pool == this || size() <= 1 || count == 1) {
    // Same contract as the pooled path: a thrown exception (or a cancelled
    // token) skips the bodies not yet started; the first error by index is
    // the one rethrown. Inline, index order and start order coincide.
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return;
      }
      body(i);
    }
    return;
  }

  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    /// One body threw: bodies that have not started yet are skipped (they
    /// still drain `remaining`, so the wait below always completes).
    std::atomic<bool> abandoned{false};
    /// Lowest body index that threw, and its exception — campaigns report
    /// the first failing shard deterministically, not whichever worker's
    /// throw won the wall-clock race.
    std::size_t error_index;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->remaining = count;
  state->error_index = count;

  std::size_t enqueued = 0;
  std::exception_ptr dispatch_error;
  for (std::size_t i = 0; i < count; ++i) {
    auto task = [state, i, &body, cancel] {
      if (!state->abandoned.load(std::memory_order_relaxed) &&
          (cancel == nullptr || !cancel->cancelled())) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->abandoned.store(true, std::memory_order_relaxed);
          if (i < state->error_index) {
            state->error_index = i;
            state->error = std::current_exception();
          }
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->remaining == 0) {
        state->done.notify_all();
      }
    };
    try {
      enqueue(std::move(task));
    } catch (...) {
      // Dispatch itself failed (allocation, pool.dispatch failpoint): stop
      // submitting, settle the count for the tasks that will never run, and
      // report after the ones already in flight drain — never deadlock.
      dispatch_error = std::current_exception();
      state->abandoned.store(true, std::memory_order_relaxed);
      break;
    }
    ++enqueued;
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->remaining -= count - enqueued;
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
  if (dispatch_error) {
    std::rethrow_exception(dispatch_error);
  }
}

}  // namespace retscan
