#include "util/cancel.hpp"

#include <atomic>

namespace retscan {

namespace {
std::atomic<bool> g_cancel{false};
}  // namespace

bool global_cancel_requested() noexcept {
  return g_cancel.load(std::memory_order_relaxed);
}

void request_global_cancel() noexcept {
  g_cancel.store(true, std::memory_order_relaxed);
}

void reset_global_cancel() noexcept {
  g_cancel.store(false, std::memory_order_relaxed);
}

const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::None:     return "none";
    case CancelReason::User:     return "user";
    case CancelReason::Deadline: return "deadline";
  }
  return "?";
}

const char* to_string(CampaignStatus status) {
  switch (status) {
    case CampaignStatus::Complete:  return "complete";
    case CampaignStatus::Cancelled: return "cancelled";
    case CampaignStatus::Timeout:   return "timeout";
  }
  return "?";
}

struct CancelToken::State {
  std::atomic<bool> requested{false};
  /// Release-store after `deadline` is written; acquire-load before it is
  /// read — the only synchronization the plain time_point needs, because a
  /// deadline is armed once, before the token fans out to workers.
  std::atomic<bool> has_deadline{false};
  std::chrono::steady_clock::time_point deadline{};
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void CancelToken::request_cancel() {
  state_->requested.store(true, std::memory_order_relaxed);
}

void CancelToken::set_deadline_ms(std::uint64_t ms) {
  state_->deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  state_->has_deadline.store(true, std::memory_order_release);
}

CancelReason CancelToken::why() const {
  if (state_->requested.load(std::memory_order_relaxed) ||
      global_cancel_requested()) {
    return CancelReason::User;
  }
  if (state_->has_deadline.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    return CancelReason::Deadline;
  }
  return CancelReason::None;
}

void CancelToken::check() const {
  switch (why()) {
    case CancelReason::None:
      return;
    case CancelReason::User:
      throw Cancelled(CancelReason::User, "cancelled by user request");
    case CancelReason::Deadline:
      throw Cancelled(CancelReason::Deadline, "deadline_ms budget elapsed");
  }
}

}  // namespace retscan
