#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

// Lane-width selection. RETSCAN_LANE_WORDS is the number of 64-bit machine
// words ganged into one LaneBlock (the unit the compiled sweep kernels move
// per net). It is a PUBLIC compile definition of the retscan target: the
// LaneBlock layout is part of the installed API, so every consumer must see
// the same value the library was built with.
#ifndef RETSCAN_LANE_WORDS
#define RETSCAN_LANE_WORDS 4
#endif

#if defined(__AVX2__) && RETSCAN_LANE_WORDS == 4
#define RETSCAN_LANE_BLOCK_AVX2 1
#include <immintrin.h>
#else
#define RETSCAN_LANE_BLOCK_AVX2 0
#endif

namespace retscan {

/// One machine word of simulation lanes. Bit b of a LaneWord holds the value
/// of a net/state slot for lane b, so every bitwise gate operation evaluates
/// 64 independent pattern/seed slots at once — the classic word-level
/// bit-parallel technique of industrial fault simulators.
using LaneWord = std::uint64_t;

inline constexpr std::size_t kLaneCount = 64;
inline constexpr LaneWord kAllLanes = ~LaneWord{0};

/// Replicate a scalar boolean across all lanes.
constexpr LaneWord lane_broadcast(bool value) { return value ? kAllLanes : LaneWord{0}; }

/// Mask selecting lanes [0, count).
constexpr LaneWord lane_mask(std::size_t count) {
  return count >= kLaneCount ? kAllLanes : (LaneWord{1} << count) - 1;
}

/// Lane-wise 2:1 select: sel ? b : a.
constexpr LaneWord lane_mux(LaneWord sel, LaneWord a, LaneWord b) {
  return (sel & b) | (~sel & a);
}

/// Number of LaneWords ganged into one LaneBlock. W=4 (the default) makes a
/// 256-lane block that maps exactly onto one AVX2 register; W=1 degenerates
/// to the classic single-word datapath (the portable/no-SIMD build).
inline constexpr std::size_t kLaneWords = RETSCAN_LANE_WORDS;
static_assert(kLaneWords >= 1 && kLaneWords <= 8,
              "RETSCAN_LANE_WORDS must be in [1, 8]");

/// Lanes carried by one LaneBlock (256 at the default W=4).
inline constexpr std::size_t kLaneBlockBits = kLaneWords * kLaneCount;

/// A block of W adjacent lane words: the unit the block sweep kernels move
/// per net. Value storage is lane-major — within a slot's block the W words
/// are contiguous, so one sweep walks cache lines sequentially. Alignment is
/// fixed by W alone (32 bytes for W>=4), never by whether AVX2 is enabled,
/// so objects are ABI-compatible between -mavx2 and portable translation
/// units.
struct alignas(kLaneWords >= 4 ? std::size_t{32} : kLaneWords * sizeof(LaneWord)) LaneBlock {
  LaneWord w[kLaneWords];
};

#if RETSCAN_LANE_BLOCK_AVX2

// AVX2 specialization: one LaneBlock is exactly one 256-bit register, and
// alignas(32) guarantees aligned loads/stores even from std::vector storage.
inline __m256i block_load(const LaneBlock& b) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(b.w));
}

inline LaneBlock block_from(__m256i v) {
  LaneBlock out;
  _mm256_store_si256(reinterpret_cast<__m256i*>(out.w), v);
  return out;
}

inline LaneBlock operator&(const LaneBlock& a, const LaneBlock& b) {
  return block_from(_mm256_and_si256(block_load(a), block_load(b)));
}

inline LaneBlock operator|(const LaneBlock& a, const LaneBlock& b) {
  return block_from(_mm256_or_si256(block_load(a), block_load(b)));
}

inline LaneBlock operator^(const LaneBlock& a, const LaneBlock& b) {
  return block_from(_mm256_xor_si256(block_load(a), block_load(b)));
}

inline LaneBlock operator~(const LaneBlock& a) {
  return block_from(_mm256_xor_si256(block_load(a), _mm256_set1_epi64x(-1)));
}

/// Lane-wise 2:1 select: sel ? b : a (bitwise, via vpandn).
inline LaneBlock lane_mux(const LaneBlock& sel, const LaneBlock& a, const LaneBlock& b) {
  const __m256i s = block_load(sel);
  return block_from(_mm256_or_si256(_mm256_and_si256(s, block_load(b)),
                                    _mm256_andnot_si256(s, block_load(a))));
}

#else  // portable fallback: fixed-trip-count loops the compiler auto-vectorizes

inline LaneBlock operator&(const LaneBlock& a, const LaneBlock& b) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = a.w[i] & b.w[i];
  return out;
}

inline LaneBlock operator|(const LaneBlock& a, const LaneBlock& b) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = a.w[i] | b.w[i];
  return out;
}

inline LaneBlock operator^(const LaneBlock& a, const LaneBlock& b) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = a.w[i] ^ b.w[i];
  return out;
}

inline LaneBlock operator~(const LaneBlock& a) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = ~a.w[i];
  return out;
}

/// Lane-wise 2:1 select: sel ? b : a.
inline LaneBlock lane_mux(const LaneBlock& sel, const LaneBlock& a, const LaneBlock& b) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) {
    out.w[i] = (sel.w[i] & b.w[i]) | (~sel.w[i] & a.w[i]);
  }
  return out;
}

#endif  // RETSCAN_LANE_BLOCK_AVX2

/// Replicate a scalar boolean across all kLaneBlockBits lanes.
inline LaneBlock block_broadcast(bool value) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = lane_broadcast(value);
  return out;
}

/// Replicate one 64-lane word into every word of the block. Used to apply a
/// per-domain clamp word (which is lane-agnostic) to a whole block.
inline LaneBlock block_fill(LaneWord word) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) out.w[i] = word;
  return out;
}

/// Mask selecting block lanes [0, count). count may be any value up to
/// kLaneBlockBits; partial last blocks use this to silence unused lanes.
inline LaneBlock block_lane_mask(std::size_t count) {
  LaneBlock out;
  for (std::size_t i = 0; i < kLaneWords; ++i) {
    const std::size_t base = i * kLaneCount;
    out.w[i] = count <= base ? LaneWord{0} : lane_mask(count - base);
  }
  return out;
}

/// True if any lane in the block is set.
inline bool block_any(const LaneBlock& b) {
  LaneWord acc = 0;
  for (std::size_t i = 0; i < kLaneWords; ++i) acc |= b.w[i];
  return acc != 0;
}

/// Index of the lowest set lane, or kLaneBlockBits if the block is empty.
/// Fault simulation uses this to recover the globally-first detecting
/// pattern, which is batch-width invariant by construction.
inline std::size_t block_first_lane(const LaneBlock& b) {
  for (std::size_t i = 0; i < kLaneWords; ++i) {
    if (b.w[i] != 0) {
      return i * kLaneCount + static_cast<std::size_t>(std::countr_zero(b.w[i]));
    }
  }
  return kLaneBlockBits;
}

inline bool operator==(const LaneBlock& a, const LaneBlock& b) {
  for (std::size_t i = 0; i < kLaneWords; ++i) {
    if (a.w[i] != b.w[i]) return false;
  }
  return true;
}

inline bool operator!=(const LaneBlock& a, const LaneBlock& b) { return !(a == b); }

/// True when the LaneBlock kernels in the compiled library use the AVX2
/// intrinsic path (as opposed to the portable auto-vectorized fallback).
/// Defined in lanes.cpp so the answer reflects the library's own build
/// flags, not those of the including translation unit.
bool lane_block_simd_compiled();

}  // namespace retscan
