#include "util/journal.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace retscan {

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr std::uint32_t kMagic = 0x4A435352u;  // "RSCJ"
constexpr std::uint32_t kFormat = 1;

/// Serialized sizes: fixed-width fields, no padding, host endianness (a
/// journal is a local crash-recovery artifact, not an interchange format).
constexpr std::size_t kHeaderBytes = 4 + 4 + 5 * 8 + 4;
constexpr std::size_t kRecordBytes =
    8 + (JournalRecord::kStatsWords + JournalRecord::kTelemetryWords) * 8 + 4;

void put_u32(std::vector<unsigned char>& out, std::uint32_t value) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &value, 4);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t value) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &value, 8);
}

std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t value;
  std::memcpy(&value, in, 4);
  return value;
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t value;
  std::memcpy(&value, in, 8);
  return value;
}

void serialize_header(std::vector<unsigned char>& out,
                      const CampaignJournal::Header& header) {
  const std::size_t start = out.size();
  put_u32(out, kMagic);
  put_u32(out, kFormat);
  put_u64(out, header.fingerprint);
  put_u64(out, header.seed);
  put_u64(out, header.total);
  put_u64(out, header.shard_size);
  put_u64(out, header.shard_count);
  put_u32(out, crc32(out.data() + start, kHeaderBytes - 4));
}

void serialize_record(std::vector<unsigned char>& out,
                      const JournalRecord& record) {
  const std::size_t start = out.size();
  put_u64(out, record.shard_index);
  for (const std::uint64_t word : record.stats) {
    put_u64(out, word);
  }
  for (const std::uint64_t word : record.telemetry) {
    put_u64(out, word);
  }
  put_u32(out, crc32(out.data() + start, kRecordBytes - 4));
}

/// Header bytes → Header; false on bad magic/format/CRC (torn or foreign
/// file — callers treat that as "no usable journal").
bool parse_header(const unsigned char* bytes, std::size_t size,
                  CampaignJournal::Header& out) {
  if (size < kHeaderBytes || get_u32(bytes) != kMagic ||
      get_u32(bytes + 4) != kFormat ||
      get_u32(bytes + kHeaderBytes - 4) != crc32(bytes, kHeaderBytes - 4)) {
    return false;
  }
  out.fingerprint = get_u64(bytes + 8);
  out.seed = get_u64(bytes + 16);
  out.total = get_u64(bytes + 24);
  out.shard_size = get_u64(bytes + 32);
  out.shard_count = get_u64(bytes + 40);
  return true;
}

bool read_file(const std::string& path, std::vector<unsigned char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

std::string hex(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

CampaignJournal::CampaignJournal(std::string path, std::uint64_t fingerprint,
                                 std::uint64_t seed, Mode mode)
    : path_(std::move(path)) {
  header_.fingerprint = fingerprint;
  header_.seed = seed;
  if (mode == Mode::Resume) {
    load_existing();
  } else {
    std::remove(path_.c_str());  // Truncate: a stale journal must not linger
  }
}

void CampaignJournal::load_existing() {
  failpoint("journal.load");
  std::vector<unsigned char> bytes;
  if (!read_file(path_, bytes)) {
    return;  // no journal yet — resume degenerates to a fresh run
  }
  Header loaded;
  if (!parse_header(bytes.data(), bytes.size(), loaded)) {
    std::fprintf(stderr,
                 "retscan: warning: checkpoint journal '%s' has a torn or "
                 "foreign header — ignoring it and starting fresh\n",
                 path_.c_str());
    return;
  }
  if (loaded.fingerprint != header_.fingerprint) {
    throw Error("checkpoint journal '" + path_ +
                "' was written by a different campaign, design or library "
                "version (journal fingerprint " + hex(loaded.fingerprint) +
                ", current " + hex(header_.fingerprint) +
                ") — rerun without --resume to discard it, or restore the "
                "original spec/netlist");
  }
  if (loaded.seed != header_.seed) {
    throw Error("checkpoint journal '" + path_ + "' was written with seed " +
                std::to_string(loaded.seed) + ", not the current seed " +
                std::to_string(header_.seed) +
                " — resumed shards are only bit-exact under the original "
                "seed; rerun without --resume to discard it");
  }
  header_ = loaded;
  plan_bound_ = header_.total != 0;

  std::size_t offset = kHeaderBytes;
  while (offset + kRecordBytes <= bytes.size()) {
    const unsigned char* record_bytes = bytes.data() + offset;
    if (get_u32(record_bytes + kRecordBytes - 4) !=
        crc32(record_bytes, kRecordBytes - 4)) {
      break;  // torn write: keep the valid prefix, rerun the rest
    }
    JournalRecord record;
    record.shard_index = get_u64(record_bytes);
    for (std::size_t i = 0; i < JournalRecord::kStatsWords; ++i) {
      record.stats[i] = get_u64(record_bytes + 8 + i * 8);
    }
    for (std::size_t i = 0; i < JournalRecord::kTelemetryWords; ++i) {
      record.telemetry[i] =
          get_u64(record_bytes + 8 + (JournalRecord::kStatsWords + i) * 8);
    }
    if (index_.emplace(record.shard_index, records_.size()).second) {
      records_.push_back(record);
    }
    offset += kRecordBytes;
  }
  resumed_count_ = records_.size();
  const std::size_t tail = bytes.size() - offset;
  if (tail != 0) {
    dropped_count_ = (tail + kRecordBytes - 1) / kRecordBytes;
    std::fprintf(stderr,
                 "retscan: warning: checkpoint journal '%s' ends in a torn "
                 "write — kept %zu record(s), dropped %zu (those shards "
                 "rerun)\n",
                 path_.c_str(), resumed_count_, dropped_count_);
  }
}

void CampaignJournal::bind_plan(std::uint64_t total, std::uint64_t shard_size,
                                std::uint64_t shard_count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (plan_bound_) {
    if (header_.total != total || header_.shard_size != shard_size ||
        header_.shard_count != shard_count) {
      throw Error("checkpoint journal '" + path_ + "' was written for " +
                  std::to_string(header_.total) + " trials in " +
                  std::to_string(header_.shard_count) + " shard(s) of " +
                  std::to_string(header_.shard_size) +
                  "; the current campaign plans " + std::to_string(total) +
                  " trials in " + std::to_string(shard_count) +
                  " shard(s) of " + std::to_string(shard_size) +
                  " — resumed shards are only bit-exact under the identical "
                  "shard plan; rerun with the original sequences/shard_size "
                  "or without --resume");
    }
    return;
  }
  header_.total = total;
  header_.shard_size = shard_size;
  header_.shard_count = shard_count;
  plan_bound_ = true;
}

std::optional<JournalRecord> CampaignJournal::find(
    std::uint64_t shard_index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(shard_index);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return records_[it->second];
}

void CampaignJournal::append(const JournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index_.emplace(record.shard_index, records_.size()).second) {
    records_.push_back(record);
  }
  flush_locked();
}

void CampaignJournal::flush_locked() {
  std::vector<unsigned char> bytes;
  bytes.reserve(kHeaderBytes + records_.size() * kRecordBytes);
  serialize_header(bytes, header_);
  for (const JournalRecord& record : records_) {
    serialize_record(bytes, record);
  }
  std::size_t write_bytes = bytes.size();
  if (failpoint("journal.flush") == FailAction::ShortWrite) {
    // Simulate a torn write: ship a truncated file through the same atomic
    // rename, exactly what a crash mid-write leaves behind.
    write_bytes = kHeaderBytes + (bytes.size() - kHeaderBytes) / 2;
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(write_bytes))) {
      throw Error("checkpoint journal: cannot write '" + tmp +
                  "' — check the directory exists and is writable");
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw Error("checkpoint journal: cannot rename '" + tmp + "' over '" +
                path_ + "'");
  }
}

std::optional<CampaignJournal::Header> CampaignJournal::peek(
    const std::string& path) {
  std::vector<unsigned char> bytes;
  Header header;
  if (!read_file(path, bytes) ||
      !parse_header(bytes.data(), bytes.size(), header)) {
    return std::nullopt;
  }
  return header;
}

}  // namespace retscan
