#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace retscan {

/// Bit-accurate model of a Fibonacci linear feedback shift register, the
/// primitive the paper's error-injection circuit (Fig. 6) uses to generate
/// random row/column injection positions, and the stimulus generator of the
/// FPGA testbench (Fig. 8) uses for random FIFO data.
///
/// The register shifts toward higher indices each step; the new bit 0 is the
/// XOR of the tap positions. A maximal-length polynomial cycles through all
/// 2^n - 1 non-zero states.
class Lfsr {
 public:
  /// `width` in [2, 64]; `taps` are bit positions XORed into the feedback.
  /// The initial state must be non-zero (all-zero is the LFSR dead state).
  Lfsr(unsigned width, std::vector<unsigned> taps, std::uint64_t initial_state = 1);

  /// A maximal-length LFSR for the given width (2..32) using a table of
  /// primitive polynomials.
  static Lfsr maximal(unsigned width, std::uint64_t initial_state = 1);

  unsigned width() const { return width_; }
  std::uint64_t state() const { return state_; }

  /// Advance one clock; returns the bit shifted out of the top position.
  bool step();

  /// Advance `count` clocks and return the full register state afterwards.
  std::uint64_t run(std::size_t count);

  /// Produce `count` output bits (one per clock) as a BitVec.
  BitVec bits(std::size_t count);

  /// Period of the sequence from the current state (walks the cycle; intended
  /// for verification on small widths).
  std::size_t period() const;

 private:
  unsigned width_;
  std::vector<unsigned> taps_;
  std::uint64_t state_;
  std::uint64_t mask_;
};

}  // namespace retscan
