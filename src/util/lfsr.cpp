#include "util/lfsr.hpp"

#include "util/error.hpp"

namespace retscan {

Lfsr::Lfsr(unsigned width, std::vector<unsigned> taps, std::uint64_t initial_state)
    : width_(width), taps_(std::move(taps)) {
  RETSCAN_CHECK(width >= 2 && width <= 64, "Lfsr: width must be in [2, 64]");
  mask_ = (width == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  RETSCAN_CHECK(!taps_.empty(), "Lfsr: need at least one tap");
  for (const unsigned tap : taps_) {
    RETSCAN_CHECK(tap < width, "Lfsr: tap position out of range");
  }
  state_ = initial_state & mask_;
  RETSCAN_CHECK(state_ != 0, "Lfsr: initial state must be non-zero");
}

Lfsr Lfsr::maximal(unsigned width, std::uint64_t initial_state) {
  // Primitive polynomial tap sets (Fibonacci form, positions XORed for
  // feedback), from standard tables (Xilinx XAPP052).
  switch (width) {
    case 2:  return Lfsr(2, {1, 0}, initial_state);
    case 3:  return Lfsr(3, {2, 1}, initial_state);
    case 4:  return Lfsr(4, {3, 2}, initial_state);
    case 5:  return Lfsr(5, {4, 2}, initial_state);
    case 6:  return Lfsr(6, {5, 4}, initial_state);
    case 7:  return Lfsr(7, {6, 5}, initial_state);
    case 8:  return Lfsr(8, {7, 5, 4, 3}, initial_state);
    case 9:  return Lfsr(9, {8, 4}, initial_state);
    case 10: return Lfsr(10, {9, 6}, initial_state);
    case 11: return Lfsr(11, {10, 8}, initial_state);
    case 12: return Lfsr(12, {11, 5, 3, 0}, initial_state);
    case 13: return Lfsr(13, {12, 3, 2, 0}, initial_state);
    case 14: return Lfsr(14, {13, 4, 2, 0}, initial_state);
    case 15: return Lfsr(15, {14, 13}, initial_state);
    case 16: return Lfsr(16, {15, 14, 12, 3}, initial_state);
    case 17: return Lfsr(17, {16, 13}, initial_state);
    case 18: return Lfsr(18, {17, 10}, initial_state);
    case 19: return Lfsr(19, {18, 5, 1, 0}, initial_state);
    case 20: return Lfsr(20, {19, 16}, initial_state);
    case 24: return Lfsr(24, {23, 22, 21, 16}, initial_state);
    case 32: return Lfsr(32, {31, 21, 1, 0}, initial_state);
    default:
      RETSCAN_CHECK(false, "Lfsr::maximal: no primitive polynomial tabulated for width");
  }
  // Unreachable.
  return Lfsr(2, {1, 0}, 1);
}

bool Lfsr::step() {
  const bool out = (state_ >> (width_ - 1)) & 1u;
  bool feedback = false;
  for (const unsigned tap : taps_) {
    feedback ^= (state_ >> tap) & 1u;
  }
  state_ = ((state_ << 1) | static_cast<std::uint64_t>(feedback)) & mask_;
  return out;
}

std::uint64_t Lfsr::run(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    step();
  }
  return state_;
}

BitVec Lfsr::bits(std::size_t count) {
  BitVec out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.set(i, step());
  }
  return out;
}

std::size_t Lfsr::period() const {
  Lfsr copy = *this;
  const std::uint64_t start = copy.state_;
  std::size_t count = 0;
  do {
    copy.step();
    ++count;
  } while (copy.state_ != start);
  return count;
}

}  // namespace retscan
