#include "util/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace retscan {

namespace {

enum class Kind { Throw, Delay, Kill, ShortWrite };

struct Arm {
  Kind kind = Kind::Throw;
  std::uint64_t delay_ms = 0;
  std::uint64_t trigger_hit = 1;  // 1-based hit that fires (ignored if every)
  bool every = false;
  std::uint64_t hits = 0;  // guarded by g_mutex
};

std::mutex g_mutex;
std::unordered_map<std::string, Arm> g_arms;
/// Fast-path gate: false ⇒ failpoint() is a single relaxed load.
std::atomic<bool> g_enabled{false};
bool g_parsed = false;

void warn(const std::string& entry, const char* why) {
  std::fprintf(stderr,
               "retscan: warning: RETSCAN_FAILPOINTS entry '%s' %s — ignored\n",
               entry.c_str(), why);
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool parse_count(std::string_view text, std::uint64_t& out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

/// One entry: site=action[:arg][@N|@every]
void parse_entry(std::string_view entry) {
  const std::string original(entry);
  entry = trim(entry);
  if (entry.empty()) {
    return;
  }
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    warn(original, "has no site=action form");
    return;
  }
  const std::string site(trim(entry.substr(0, eq)));
  std::string_view action = trim(entry.substr(eq + 1));

  Arm arm;
  const std::size_t at = action.rfind('@');
  if (at != std::string_view::npos) {
    const std::string_view count = trim(action.substr(at + 1));
    if (count == "every") {
      arm.every = true;
    } else if (!parse_count(count, arm.trigger_hit) || arm.trigger_hit == 0) {
      warn(original, "has a bad @N hit count");
      return;
    }
    action = trim(action.substr(0, at));
  }

  if (action == "throw") {
    arm.kind = Kind::Throw;
  } else if (action == "kill") {
    arm.kind = Kind::Kill;
  } else if (action == "shortwrite") {
    arm.kind = Kind::ShortWrite;
  } else if (action.substr(0, 6) == "delay:") {
    arm.kind = Kind::Delay;
    if (!parse_count(trim(action.substr(6)), arm.delay_ms)) {
      warn(original, "has a bad delay:<ms> value");
      return;
    }
  } else {
    warn(original, "names an unknown action");
    return;
  }
  g_arms[site] = arm;  // last entry for a site wins
}

/// Parse RETSCAN_FAILPOINTS into g_arms. Caller holds g_mutex.
void parse_env_locked() {
  g_arms.clear();
  g_parsed = true;
  const char* env = std::getenv("RETSCAN_FAILPOINTS");
  if (env == nullptr || *env == '\0') {
    g_enabled.store(false, std::memory_order_release);
    return;
  }
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t sep = rest.find_first_of(";,");
    parse_entry(rest.substr(0, sep));
    if (sep == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(sep + 1);
  }
  g_enabled.store(!g_arms.empty(), std::memory_order_release);
}

}  // namespace

void failpoints_refresh() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  parse_env_locked();
}

bool failpoints_enabled() {
  if (!g_enabled.load(std::memory_order_acquire)) {
    // Either nothing armed or never parsed — settle which, once.
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_parsed) {
      parse_env_locked();
    }
    return g_enabled.load(std::memory_order_acquire);
  }
  return true;
}

FailAction failpoint(const char* site) {
  if (!failpoints_enabled()) {
    return FailAction::None;
  }
  Kind kind;
  std::uint64_t delay_ms;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = g_arms.find(site);
    if (it == g_arms.end()) {
      return FailAction::None;
    }
    Arm& arm = it->second;
    ++arm.hits;
    if (!arm.every && arm.hits != arm.trigger_hit) {
      return FailAction::None;
    }
    kind = arm.kind;
    delay_ms = arm.delay_ms;
  }
  switch (kind) {
    case Kind::Throw:
      throw Error(std::string("failpoint ") + site);
    case Kind::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return FailAction::None;
    case Kind::Kill:
      // Die the way an OOM-kill would: no unwinding, no flush, no atexit.
      std::raise(SIGKILL);
      return FailAction::None;  // unreachable (but keeps -Wreturn-type quiet)
    case Kind::ShortWrite:
      return FailAction::ShortWrite;
  }
  return FailAction::None;
}

}  // namespace retscan
