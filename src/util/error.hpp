#pragma once

#include <stdexcept>
#include <string>

namespace retscan {

/// Exception type thrown by all retscan subsystems for precondition and
/// invariant violations. Carries a plain human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& message);
}  // namespace detail

}  // namespace retscan

/// Validate a precondition or invariant; throws retscan::Error on failure.
/// Used instead of assert() so violations are testable and survive NDEBUG.
#define RETSCAN_CHECK(cond, message)                                    \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::retscan::detail::throw_error(__FILE__, __LINE__, (message));    \
    }                                                                   \
  } while (false)
