#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retscan {

/// One journaled shard outcome: the shard's ValidationStats counters and its
/// ScheduleTelemetry counters, flattened to raw u64 arrays so the journal
/// stays a pure util-layer facility (the parallel layer owns the
/// ShardOutcome ⇄ JournalRecord conversion). Merged in shard-index order on
/// resume, exactly like freshly run shards — which is why a resumed campaign
/// is bit-identical to an uninterrupted one.
struct JournalRecord {
  static constexpr std::size_t kStatsWords = 8;
  static constexpr std::size_t kTelemetryWords = 6;

  std::uint64_t shard_index = 0;
  std::uint64_t stats[kStatsWords] = {};
  std::uint64_t telemetry[kTelemetryWords] = {};
};

/// Crash-safe campaign checkpoint journal.
///
/// On-disk format (host-endian, fixed-width little structs):
///
///     header:  magic 'RSCJ' u32 | format u32 | fingerprint u64 | seed u64
///              | total u64 | shard_size u64 | shard_count u64 | crc32 u32
///     record:  shard_index u64 | 8×u64 stats | 6×u64 telemetry | crc32 u32
///
/// Every append rewrites the whole file to `path.tmp` and atomically
/// renames it over `path`, so a reader (or a resume after SIGKILL) only
/// ever sees a complete prefix of records — the worst a torn write can do
/// is truncate the tail, and the loader tolerates exactly that: records
/// with a bad or missing CRC are dropped (their shards simply rerun).
/// Campaigns are minutes-to-hours and shards are seconds, so whole-file
/// rewrites of a few KiB per shard are noise (gated ≤ 1.05 overhead in
/// ci/check_bench_json.py).
///
/// The fingerprint (spec + design geometry + library version, computed by
/// the API layer) and seed bind a journal to one exact campaign; Resume
/// mode rejects mismatches with an actionable error instead of silently
/// merging foreign statistics.
class CampaignJournal {
 public:
  enum class Mode {
    Truncate, ///< start fresh, discarding any existing file at `path`
    Resume,   ///< load existing records; validate header against args
  };

  /// Opens (Resume) or resets (Truncate) the journal. Resume with no file
  /// at `path` starts fresh; Resume with a mismatched fingerprint/seed
  /// throws retscan::Error.
  CampaignJournal(std::string path, std::uint64_t fingerprint,
                  std::uint64_t seed, Mode mode);

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Bind the shard plan before the first append/find. On resume, rejects a
  /// journal written under a different (total, shard_size) plan — resumed
  /// records are only bit-exact under the identical shard decomposition.
  void bind_plan(std::uint64_t total, std::uint64_t shard_size,
                 std::uint64_t shard_count);

  /// The journaled outcome of shard `shard_index`, or nullptr if that shard
  /// has not completed. Thread-safe against concurrent append().
  std::optional<JournalRecord> find(std::uint64_t shard_index) const;

  /// Append one completed shard and flush (write-temp + atomic rename).
  /// Thread-safe. Throws retscan::Error on I/O failure.
  void append(const JournalRecord& record);

  /// Records loaded from disk by Resume (before any append this run).
  std::size_t resumed_count() const { return resumed_count_; }
  /// Records dropped on load because of a short write / bad CRC.
  std::size_t dropped_count() const { return dropped_count_; }

  const std::string& path() const { return path_; }

  /// Read just the header of an existing journal — what validate() uses to
  /// reject a --resume against the wrong spec before any work starts.
  /// nullopt when the file is missing or its header is torn/corrupt (both
  /// mean "no usable journal", not an error).
  struct Header {
    std::uint64_t fingerprint = 0;
    std::uint64_t seed = 0;
    std::uint64_t total = 0;
    std::uint64_t shard_size = 0;
    std::uint64_t shard_count = 0;
  };
  static std::optional<Header> peek(const std::string& path);

 private:
  void load_existing();
  void flush_locked();

  std::string path_;
  Header header_;
  bool plan_bound_ = false;
  std::size_t resumed_count_ = 0;
  std::size_t dropped_count_ = 0;

  mutable std::mutex mutex_;
  std::vector<JournalRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

/// CRC32 (reflected 0xEDB88320, the zlib polynomial) over `size` bytes —
/// the integrity check on every journal header and record.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace retscan
