#include "testbench/harness.hpp"

#include <algorithm>

#include "retscan/runtime.hpp"
#include "scan/scan_io.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {
std::size_t chain_length_for(const ValidationConfig& config) {
  const std::size_t flops = config.fifo.flop_count();
  RETSCAN_CHECK(flops % config.chain_count == 0,
                "ValidationConfig: flop count not divisible by chain count");
  return flops / config.chain_count;
}

/// Injector seed derived as an independent stream of the campaign seed.
/// (The old `seed | 1` collided for seeds differing only in bit 0 — fatal
/// for sharded campaigns whose per-shard seeds are dense.)
std::uint64_t injector_seed(const ValidationConfig& config) {
  return Rng::derive_stream(config.seed, 0x494e4a4543544full);  // "INJECTO"
}
}  // namespace

FastTestbench::FastTestbench(const ValidationConfig& config)
    : config_(config), chain_length_(chain_length_for(config)), rng_(config.seed) {
  injector_ = std::make_unique<ErrorInjector>(config_.chain_count, chain_length_,
                                              injector_seed(config_));
}

void FastTestbench::reseed(std::uint64_t seed) {
  config_.seed = seed;
  rng_ = Rng(seed);
  injector_ = std::make_unique<ErrorInjector>(config_.chain_count, chain_length_,
                                              injector_seed(config_));
}

ValidationStats FastTestbench::run(std::size_t count) {
  ValidationStats stats;
  const bool use_hamming = config_.kind != CodeKind::CrcDetect;
  const bool use_crc = config_.kind != CodeKind::HammingCorrect;
  HammingChainProtector hamming(HammingCode(config_.hamming_r), config_.chain_count,
                                chain_length_);
  CrcChainProtector crc(Crc16::ccitt(), config_.chain_count, chain_length_,
                        config_.chain_count);

  for (std::size_t seq = 0; seq < count; ++seq) {
    // Stage 1-2: reset + write identical random data to FIFO_A and FIFO_B.
    std::vector<BitVec> fifo_a;
    fifo_a.reserve(config_.chain_count);
    for (std::size_t c = 0; c < config_.chain_count; ++c) {
      fifo_a.push_back(rng_.next_bits(chain_length_));
    }
    const std::vector<BitVec> fifo_b = fifo_a;  // golden reference

    // Stage 3: sleep entry — encode.
    if (use_hamming) {
      hamming.encode(fifo_a);
    }
    if (use_crc) {
      crc.encode(fifo_a);
    }

    // Sleep: inject upsets into the retained state.
    std::vector<ErrorLocation> errors;
    switch (config_.mode) {
      case InjectionMode::None:
        break;
      case InjectionMode::SingleRandom:
        errors.push_back(injector_->random_single());
        break;
      case InjectionMode::MultipleBurst:
        errors = injector_->clustered_burst(config_.burst_size, config_.burst_spread);
        break;
      case InjectionMode::RushModel: {
        const RushCurrentModel rush(config_.rush);
        const CorruptionModel model(config_.corruption, rush);
        errors = model.sample(config_.chain_count, chain_length_, rng_);
        break;
      }
    }
    ErrorInjector::flip_chain_data(fifo_a, errors);

    // Stage 4: wake — decode, correct, recheck.
    bool detected = false;
    bool recheck_clean = true;
    if (use_hamming) {
      const auto decode = hamming.decode_and_correct(fifo_a);
      detected = detected || decode.any_error();
      const auto recheck = hamming.decode_and_correct(fifo_a);
      recheck_clean = recheck_clean && !recheck.any_error();
    }
    if (use_crc) {
      const auto check = crc.check(fifo_a);
      detected = detected || check.any_error();
      const auto recheck = crc.check(fifo_a);
      recheck_clean = recheck_clean && !recheck.any_error();
    }
    if (!use_hamming && detected) {
      recheck_clean = false;  // detection-only: nothing was repaired
    }

    // Stage 5: Comparator reads FIFO_A and FIFO_B.
    const bool matches = fifo_a == fifo_b;

    ++stats.sequences;
    stats.errors_injected += errors.size();
    if (!errors.empty()) {
      ++stats.sequences_with_errors;
      if (detected) {
        ++stats.detected;
      }
      if (matches && recheck_clean) {
        ++stats.corrected;
      }
      if (detected && !recheck_clean) {
        ++stats.flagged_uncorrectable;
      }
      if (!matches) {
        ++stats.comparator_mismatches;
        if (!detected) {
          ++stats.silent_corruptions;
        }
      }
    } else if (!matches) {
      ++stats.comparator_mismatches;
      ++stats.silent_corruptions;
    }
  }
  return stats;
}

StructuralTestbench::StructuralTestbench(const ValidationConfig& config)
    : config_(config), rng_(config.seed) {
  ProtectionConfig protection;
  protection.kind = config_.kind;
  protection.hamming_r = config_.hamming_r;
  protection.chain_count = config_.chain_count;
  protection.test_width = 4;
  design_ = std::make_unique<ProtectedDesign>(make_fifo(config_.fifo), protection);
  session_ = std::make_unique<RetentionSession>(*design_);
  // The schedule is resolved once against the environment here; reseed()
  // keeps it, so pooled reuse matches fresh construction. The session
  // constructor already ran its reset settle under the engine's default
  // schedule — drain that so telemetry reports only campaign settles under
  // the configured schedule.
  session_->sim().set_schedule(runtime_schedule(config_.schedule));
  session_->sim().invalidate_schedule_state();
  session_->sim().take_schedule_telemetry();
  injector_ = std::make_unique<ErrorInjector>(
      config_.chain_count, design_->chain_length(), injector_seed(config_));
  if (config_.mode == InjectionMode::RushModel) {
    const RushCurrentModel rush(config_.rush);
    corruption_ = std::make_unique<CorruptionModel>(config_.corruption, rush);
  }
}

void StructuralTestbench::reseed(std::uint64_t seed) {
  config_.seed = seed;
  rng_ = Rng(seed);
  injector_ = std::make_unique<ErrorInjector>(
      config_.chain_count, design_->chain_length(), injector_seed(config_));
  if (config_.mode == InjectionMode::RushModel) {
    const RushCurrentModel rush(config_.rush);
    corruption_ = std::make_unique<CorruptionModel>(config_.corruption, rush);
  }
  // The session constructors perform nothing but a reset (controls low,
  // inputs zero, one settle), so resetting the simulators restores the
  // exact fresh-construction state without recompiling the design. The
  // explicit invalidate matches construction, which always enters the first
  // shard with a forced resync armed (reset()'s own settle consumes the one
  // it arms) — without it a warm engine's first settle could take the event
  // path where a fresh engine's runs a full sweep, and the shard's
  // telemetry would depend on workspace history.
  session_->sim().reset();
  session_->sim().invalidate_schedule_state();
  session_->reset_fsm();
  if (packed_session_) {
    packed_session_->sim().reset();
    packed_session_->sim().invalidate_schedule_state();
  }
}

std::vector<ErrorLocation> StructuralTestbench::sample_errors() {
  switch (config_.mode) {
    case InjectionMode::None:
      return {};
    case InjectionMode::SingleRandom:
      return {injector_->random_single()};
    case InjectionMode::MultipleBurst:
      return injector_->clustered_burst(config_.burst_size, config_.burst_spread);
    case InjectionMode::RushModel:
      return corruption_->sample(config_.chain_count, design_->chain_length(), rng_);
  }
  return {};
}

ScheduleTelemetry StructuralTestbench::take_telemetry() {
  ScheduleTelemetry telemetry = session_->sim().take_schedule_telemetry();
  if (packed_session_) {
    telemetry += packed_session_->sim().take_schedule_telemetry();
  }
  return telemetry;
}

ValidationStats StructuralTestbench::run_packed(std::size_t count) {
  ValidationStats stats;
  if (!packed_session_) {
    packed_session_ = std::make_unique<PackedRetentionSession>(*design_);
    packed_session_->sim().set_schedule(runtime_schedule(config_.schedule));
    packed_session_->sim().invalidate_schedule_state();
    packed_session_->sim().take_schedule_telemetry();  // construction settle
  }
  PackedSim& sim = packed_session_->sim();
  const Netlist& nl = design_->netlist();
  const std::size_t width = config_.fifo.width;
  const NetId wr_en = nl.input_net("wr_en");
  const NetId rd_en = nl.input_net("rd_en");
  std::vector<NetId> din(width), dout(width);
  for (std::size_t b = 0; b < width; ++b) {
    din[b] = nl.input_net("din" + std::to_string(b));
    dout[b] = nl.output_net("dout" + std::to_string(b));
  }

  for (std::size_t base = 0; base < count; base += PackedSim::lane_count()) {
    const std::size_t lanes = std::min(PackedSim::lane_count(), count - base);

    // Stage 1: reset both FIFOs by blanking the retained state (all lanes).
    FifoModel fifo_b(config_.fifo);
    for (const auto& chain : design_->chains().chains) {
      for (const CellId flop : chain) {
        sim.set_flop_lanes(flop, 0);
      }
    }
    sim.refresh();

    // Stage 2: Stimulus writes the same random words to every lane and to
    // the golden model.
    sim.set_input_all(rd_en, false);
    const std::size_t words =
        config_.fifo.depth / 2 + rng_.next_below(config_.fifo.depth / 2);
    for (std::size_t w = 0; w < words; ++w) {
      const BitVec word = rng_.next_bits(width);
      sim.set_input_all(wr_en, true);
      for (std::size_t b = 0; b < width; ++b) {
        sim.set_input_all(din[b], word.get(b));
      }
      sim.step();
      fifo_b.step(true, false, word);
    }
    sim.set_input_all(wr_en, false);

    // Stages 3-4: one sleep/wake protocol run, 64 corruption trials.
    std::vector<std::vector<ErrorLocation>> upsets(lanes);
    for (auto& lane_upsets : upsets) {
      lane_upsets = sample_errors();
    }
    const auto outcome = packed_session_->sleep_wake_cycle(upsets, &rng_);

    // Stage 5: Comparator reads every lane's FIFO against the golden model.
    LaneWord mismatch = 0;
    for (std::size_t w = 0; w < words; ++w) {
      sim.set_input_all(rd_en, true);
      sim.eval();
      const BitVec golden = fifo_b.front();
      for (std::size_t b = 0; b < width; ++b) {
        mismatch |= sim.net_lanes(dout[b]) ^ lane_broadcast(golden.get(b));
      }
      sim.step();
      fifo_b.step(false, true, BitVec(width));
    }
    sim.set_input_all(rd_en, false);

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const bool detected = (outcome.errors_detected >> lane & 1u) != 0;
      const bool recheck_clean = (outcome.recheck_clean >> lane & 1u) != 0;
      const bool matches = (mismatch >> lane & 1u) == 0;
      ++stats.sequences;
      stats.errors_injected += upsets[lane].size();
      if (!upsets[lane].empty()) {
        ++stats.sequences_with_errors;
        if (detected) {
          ++stats.detected;
        }
        if (matches && recheck_clean) {
          ++stats.corrected;
        }
        if (detected && !recheck_clean) {
          ++stats.flagged_uncorrectable;
        }
        if (!matches) {
          ++stats.comparator_mismatches;
          if (!detected) {
            ++stats.silent_corruptions;
          }
        }
      } else if (!matches) {
        ++stats.comparator_mismatches;
        ++stats.silent_corruptions;
      }
    }
  }
  return stats;
}

ValidationStats StructuralTestbench::run(std::size_t count) {
  ValidationStats stats;
  Simulator& sim = session_->sim();
  const std::size_t width = config_.fifo.width;

  for (std::size_t seq = 0; seq < count; ++seq) {
    // Stage 1: reset both FIFOs by restoring a blank state.
    FifoModel fifo_b(config_.fifo);
    std::vector<BitVec> blank(config_.chain_count, BitVec(design_->chain_length()));
    scan_restore(sim, design_->chains(), blank);

    // Stage 2: Stimulus writes the same random words to both.
    sim.set_input("rd_en", false);
    const std::size_t words = config_.fifo.depth / 2 + rng_.next_below(config_.fifo.depth / 2);
    for (std::size_t w = 0; w < words; ++w) {
      const BitVec word = rng_.next_bits(width);
      sim.set_input("wr_en", true);
      for (std::size_t b = 0; b < width; ++b) {
        sim.set_input("din" + std::to_string(b), word.get(b));
      }
      sim.step();
      fifo_b.step(true, false, word);
    }
    sim.set_input("wr_en", false);

    // Stages 3-4: sleep request, wake, decode/correct.
    const auto errors = sample_errors();
    const auto outcome = session_->sleep_wake_cycle(errors, &rng_);

    // Stage 5: Comparator reads both FIFOs word by word.
    bool matches = true;
    for (std::size_t w = 0; w < words; ++w) {
      sim.set_input("rd_en", true);
      sim.eval();
      BitVec dout(width);
      for (std::size_t b = 0; b < width; ++b) {
        dout.set(b, sim.output("dout" + std::to_string(b)));
      }
      if (dout != fifo_b.front()) {
        matches = false;
      }
      sim.step();
      fifo_b.step(false, true, BitVec(width));
    }
    sim.set_input("rd_en", false);

    ++stats.sequences;
    stats.errors_injected += errors.size();
    if (!errors.empty()) {
      ++stats.sequences_with_errors;
      if (outcome.errors_detected) {
        ++stats.detected;
      }
      if (matches && outcome.recheck_clean) {
        ++stats.corrected;
      }
      if (outcome.final_state == PgState::ErrorFlagged) {
        ++stats.flagged_uncorrectable;
      }
      if (!matches) {
        ++stats.comparator_mismatches;
        if (!outcome.errors_detected) {
          ++stats.silent_corruptions;
        }
      }
    } else if (!matches) {
      ++stats.comparator_mismatches;
      ++stats.silent_corruptions;
    }
    // Fresh sleep episode next sequence.
    session_->reset_fsm();
  }
  return stats;
}

}  // namespace retscan
