#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuits/fifo.hpp"
#include "coding/protectors.hpp"
#include "core/protected_design.hpp"
#include "power/corruption.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"

namespace retscan {

/// How the injector perturbs each test sequence (Fig. 7).
enum class InjectionMode {
  None,           ///< control experiments
  SingleRandom,   ///< one LFSR-selected upset per sequence (experiment 1)
  MultipleBurst,  ///< clustered multi-bit burst per sequence (experiment 2)
  RushModel,      ///< upsets sampled from the electrical corruption model
};

/// Configuration of the validation campaign (Fig. 8 testbench).
struct ValidationConfig {
  FifoSpec fifo{32, 32};
  std::size_t chain_count = 80;
  CodeKind kind = CodeKind::HammingPlusCrc;
  unsigned hamming_r = 3;
  InjectionMode mode = InjectionMode::SingleRandom;
  std::size_t burst_size = 4;
  std::size_t burst_spread = 2;
  std::uint64_t seed = 1;
  /// Settle schedule for the structural simulators (resolved against
  /// RETSCAN_SCHEDULE at construction; Auto lets each engine probe its own
  /// activity). Campaign statistics are bit-identical under every mode —
  /// the knob only selects how settles are computed.
  Schedule schedule = Schedule::Auto;
  /// Used only with InjectionMode::RushModel.
  CorruptionParameters corruption{};
  RushParameters rush{};
};

/// Counter block of Fig. 8: every observable event of the campaign.
struct ValidationStats {
  std::size_t sequences = 0;
  std::size_t errors_injected = 0;
  std::size_t sequences_with_errors = 0;
  std::size_t detected = 0;              ///< monitor raised its error output
  std::size_t corrected = 0;             ///< recheck clean AND state matches FIFO_B
  std::size_t flagged_uncorrectable = 0; ///< monitor escalated (ErrorFlagged)
  std::size_t comparator_mismatches = 0; ///< FIFO_A data != FIFO_B data at readout
  /// Errors that reached the comparator without the monitor noticing —
  /// the reliability escape count. The paper reports zero.
  std::size_t silent_corruptions = 0;

  double detection_rate() const {
    return sequences_with_errors == 0
               ? 1.0
               : static_cast<double>(detected) / static_cast<double>(sequences_with_errors);
  }
  double correction_rate() const {
    return sequences_with_errors == 0
               ? 1.0
               : static_cast<double>(corrected) / static_cast<double>(sequences_with_errors);
  }

  /// Shard reduction: counters are pure sums, so merging per-shard stats in
  /// shard order reproduces the single-threaded campaign exactly.
  ValidationStats& operator+=(const ValidationStats& other) {
    sequences += other.sequences;
    errors_injected += other.errors_injected;
    sequences_with_errors += other.sequences_with_errors;
    detected += other.detected;
    corrected += other.corrected;
    flagged_uncorrectable += other.flagged_uncorrectable;
    comparator_mismatches += other.comparator_mismatches;
    silent_corruptions += other.silent_corruptions;
    return *this;
  }

  bool operator==(const ValidationStats&) const = default;
};

/// Behavioral (fast) testbench: runs the full monitoring protocol on chain
/// data snapshots using the bit-exact behavioral protectors. Equivalent in
/// outcome to the structural path (proven by the core test suite's
/// structural-vs-behavioral test) and fast enough for the paper's
/// million-sequence campaigns.
class FastTestbench {
 public:
  explicit FastTestbench(const ValidationConfig& config);

  const ValidationConfig& config() const { return config_; }
  std::size_t chain_length() const { return chain_length_; }

  /// Run `count` test sequences and accumulate statistics.
  ValidationStats run(std::size_t count);

  /// Rewind to the state of a freshly constructed testbench with the same
  /// shape but `seed`. This is what makes persistent per-thread workspaces
  /// possible: a pooled campaign reseeds a warm testbench per shard instead
  /// of rebuilding it, with bit-identical results (asserted by
  /// test_parallel's persistent-workspace case).
  void reseed(std::uint64_t seed);

  /// Behavioral runs have no gate-level settles; always empty. Kept so the
  /// campaign runner drains telemetry uniformly across testbench tiers.
  ScheduleTelemetry take_telemetry() { return ScheduleTelemetry{}; }

 private:
  ValidationConfig config_;
  std::size_t chain_length_;
  Rng rng_;
  std::unique_ptr<ErrorInjector> injector_;
};

/// Structural (cycle-accurate) testbench: FIFO_A is a simulated
/// ProtectedDesign including error injection; FIFO_B is the behavioral
/// golden model; Stimulus writes identical random words to both; the
/// Comparator reads both back after the sleep/wake cycle (the exact 5-stage
/// sequence of Section IV). Slower — use for thousands of sequences.
class StructuralTestbench {
 public:
  explicit StructuralTestbench(const ValidationConfig& config);

  const ProtectedDesign& design() const { return *design_; }

  ValidationStats run(std::size_t count);

  /// Bit-parallel campaign: batches of 64 corruption trials share one
  /// simulated design. Each batch writes one random stimulus (broadcast to
  /// every lane), then runs the sleep/wake protocol once with 64 independent
  /// upset sets — the comparator and monitor outcomes are read per lane.
  /// Statistically equivalent to run() (same protocol, same injectors) at a
  /// fraction of the simulation cost; this is the paper-scale path.
  ValidationStats run_packed(std::size_t count);

  /// Rewind to a freshly constructed testbench with the same shape but
  /// `seed`: the simulators return to their power-on state (construction
  /// writes nothing beyond a reset), the protocol FSM restarts, and the
  /// random streams are re-derived. The expensive compiled design and
  /// sessions are kept — this is the persistent-workspace fast path of the
  /// pooled campaign runner.
  void reseed(std::uint64_t seed);

  /// Drain accumulated settle-schedule telemetry from both simulators
  /// (scalar session + packed session when it exists); counters reset.
  ScheduleTelemetry take_telemetry();

 private:
  std::vector<ErrorLocation> sample_errors();

  ValidationConfig config_;
  std::unique_ptr<ProtectedDesign> design_;
  std::unique_ptr<RetentionSession> session_;
  std::unique_ptr<PackedRetentionSession> packed_session_;
  Rng rng_;
  std::unique_ptr<ErrorInjector> injector_;
  std::unique_ptr<CorruptionModel> corruption_;
};

}  // namespace retscan
