#include "circuits/generators.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace retscan {

Netlist make_counter(std::size_t bits) {
  RETSCAN_CHECK(bits >= 1, "make_counter: bits must be >= 1");
  Netlist nl("counter" + std::to_string(bits));
  const NetId en = nl.add_input("en");

  std::vector<CellId> cells(bits);
  std::vector<NetId> q(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const NetId dummy = nl.add_net();
    cells[i] = nl.add_cell(CellType::Dff, {dummy}, "q" + std::to_string(i));
    q[i] = nl.output_of(cells[i]);
  }

  NetId carry = en;
  for (std::size_t i = 0; i < bits; ++i) {
    const NetId next = nl.n_xor(q[i], carry);
    nl.rewire_fanin(cells[i], 0, next);
    if (i + 1 < bits) {
      carry = nl.n_and(q[i], carry);
    }
    nl.add_output("q" + std::to_string(i), q[i]);
  }
  return nl;
}

Netlist make_shift_register(std::size_t length, bool expose_taps) {
  RETSCAN_CHECK(length >= 1, "make_shift_register: length must be >= 1");
  Netlist nl("shiftreg" + std::to_string(length));
  const NetId sin = nl.add_input("sin");

  NetId prev = sin;
  for (std::size_t i = 0; i < length; ++i) {
    prev = nl.n_dff(prev, "sr" + std::to_string(i));
    if (expose_taps) {
      nl.add_output("q" + std::to_string(i), prev);
    }
  }
  nl.add_output("sout", prev);
  return nl;
}

namespace {
NetId equals_const(Netlist& nl, const std::vector<NetId>& x, std::size_t value) {
  std::vector<NetId> terms;
  terms.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    terms.push_back(((value >> i) & 1u) ? x[i] : nl.n_not(x[i]));
  }
  return nl.n_and_tree(terms);
}
}  // namespace

Netlist make_register_file(std::size_t words, std::size_t width) {
  RETSCAN_CHECK(words >= 2 && (words & (words - 1)) == 0,
                "make_register_file: words must be a power of two >= 2");
  RETSCAN_CHECK(width >= 1, "make_register_file: width must be >= 1");
  std::size_t abits = 0;
  while ((std::size_t{1} << abits) < words) {
    ++abits;
  }

  Netlist nl("regfile" + std::to_string(words) + "x" + std::to_string(width));
  const NetId we = nl.add_input("we");
  std::vector<NetId> waddr(abits), raddr(abits), wdata(width);
  for (std::size_t i = 0; i < abits; ++i) {
    waddr[i] = nl.add_input("waddr" + std::to_string(i));
    raddr[i] = nl.add_input("raddr" + std::to_string(i));
  }
  for (std::size_t b = 0; b < width; ++b) {
    wdata[b] = nl.add_input("wdata" + std::to_string(b));
  }

  std::vector<CellId> cells(words * width);
  std::vector<NetId> q(words * width);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const NetId dummy = nl.add_net();
    cells[i] = nl.add_cell(CellType::Dff, {dummy}, "rf" + std::to_string(i));
    q[i] = nl.output_of(cells[i]);
  }

  for (std::size_t w = 0; w < words; ++w) {
    const NetId sel = nl.n_and(we, equals_const(nl, waddr, w));
    for (std::size_t b = 0; b < width; ++b) {
      const std::size_t i = w * width + b;
      nl.rewire_fanin(cells[i], 0, nl.n_mux(sel, q[i], wdata[b]));
    }
  }

  for (std::size_t b = 0; b < width; ++b) {
    std::vector<NetId> level(words);
    for (std::size_t w = 0; w < words; ++w) {
      level[w] = q[w * width + b];
    }
    for (std::size_t s = 0; s < abits; ++s) {
      std::vector<NetId> next(level.size() / 2);
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] = nl.n_mux(raddr[s], level[2 * i], level[2 * i + 1]);
      }
      level = std::move(next);
    }
    nl.add_output("rdata" + std::to_string(b), level[0]);
  }
  return nl;
}

void append_padding_flops(Netlist& netlist, std::size_t count) {
  if (count == 0) {
    return;
  }
  NetId prev = netlist.add_input("pad_in");
  for (std::size_t i = 0; i < count; ++i) {
    prev = netlist.n_dff(prev, "pad" + std::to_string(i));
  }
  netlist.add_output("pad_out", prev);
}

Netlist make_registered_adder(std::size_t bits) {
  RETSCAN_CHECK(bits >= 1, "make_registered_adder: bits must be >= 1");
  Netlist nl("adder" + std::to_string(bits));
  std::vector<NetId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = nl.n_dff(nl.add_input("a" + std::to_string(i)), "ra" + std::to_string(i));
    b[i] = nl.n_dff(nl.add_input("b" + std::to_string(i)), "rb" + std::to_string(i));
  }
  NetId carry = nl.n_dff(nl.add_input("cin"), "rc");
  for (std::size_t i = 0; i < bits; ++i) {
    const NetId axb = nl.n_xor(a[i], b[i]);
    const NetId sum = nl.n_xor(axb, carry);
    const NetId cout = nl.n_or(nl.n_and(a[i], b[i]), nl.n_and(axb, carry));
    nl.add_output("sum" + std::to_string(i), nl.n_dff(sum, "rs" + std::to_string(i)));
    carry = cout;
  }
  nl.add_output("cout", nl.n_dff(carry, "rcout"));
  return nl;
}

}  // namespace retscan
