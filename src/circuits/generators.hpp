#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace retscan {

/// Free-running binary up-counter with enable.
/// Ports: input `en`; outputs `q{i}` for i in [0, bits).
Netlist make_counter(std::size_t bits);

/// Serial-in serial-out shift register (also a degenerate scan-chain-like
/// structure useful for property tests).
/// Ports: input `sin`; output `sout`; taps `q{i}` optional via outputs.
Netlist make_shift_register(std::size_t length, bool expose_taps = false);

/// Register file with one write port and one combinational read port.
/// Ports: inputs `we`, `waddr{i}`, `raddr{i}`, `wdata{i}`;
/// outputs `rdata{i}`. words must be a power of two.
Netlist make_register_file(std::size_t words, std::size_t width);

/// Append `count` spare flip-flops to an existing design as a daisy chain
/// from a new input `pad_in` to a new output `pad_out`. Used to round a
/// design's flop count up to a multiple of the desired chain count (the
/// paper's Table III uses W values like 56/55/57 that do not divide the
/// FIFO's 1040 flops evenly; padding with spare flops is the standard
/// practice). Must be called before scan insertion.
void append_padding_flops(Netlist& netlist, std::size_t count);

/// A small combinational benchmark circuit (4-bit ripple-carry adder with
/// registered inputs/outputs) used by the ATPG tests; has both reconvergent
/// fanout and redundant-free structure.
/// Ports: inputs `a{i}`, `b{i}`, `cin`; outputs `sum{i}`, `cout`.
Netlist make_registered_adder(std::size_t bits);

}  // namespace retscan
