#include "circuits/fifo.hpp"

#include <string>

#include "util/error.hpp"

namespace retscan {

namespace {
bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t log2_exact(std::size_t v) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < v) {
    ++bits;
  }
  return bits;
}

/// Ripple increment: returns nets of x+1 (mod 2^n).
std::vector<NetId> increment(Netlist& nl, const std::vector<NetId>& x) {
  std::vector<NetId> out(x.size());
  NetId carry = nl.n_const(true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = nl.n_xor(x[i], carry);
    if (i + 1 < x.size()) {
      carry = nl.n_and(x[i], carry);
    }
  }
  return out;
}

/// Ripple decrement: returns nets of x-1 (mod 2^n).
std::vector<NetId> decrement(Netlist& nl, const std::vector<NetId>& x) {
  std::vector<NetId> out(x.size());
  NetId borrow = nl.n_const(true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = nl.n_xor(x[i], borrow);
    if (i + 1 < x.size()) {
      borrow = nl.n_and(nl.n_not(x[i]), borrow);
    }
  }
  return out;
}

/// Equality of a bus against a constant.
NetId equals_const(Netlist& nl, const std::vector<NetId>& x, std::size_t value) {
  std::vector<NetId> terms;
  terms.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool bit = (value >> i) & 1u;
    terms.push_back(bit ? x[i] : nl.n_not(x[i]));
  }
  return nl.n_and_tree(terms);
}
}  // namespace

std::size_t FifoSpec::pointer_bits() const { return log2_exact(depth); }
std::size_t FifoSpec::counter_bits() const { return log2_exact(depth) + 1; }
std::size_t FifoSpec::flop_count() const {
  return depth * width + 2 * pointer_bits() + counter_bits();
}

Netlist make_fifo(const FifoSpec& spec) {
  RETSCAN_CHECK(is_power_of_two(spec.depth) && spec.depth >= 2,
                "make_fifo: depth must be a power of two >= 2");
  RETSCAN_CHECK(spec.width >= 1, "make_fifo: width must be >= 1");

  Netlist nl("fifo" + std::to_string(spec.depth) + "x" + std::to_string(spec.width));
  const std::size_t pbits = spec.pointer_bits();
  const std::size_t cbits = spec.counter_bits();

  const NetId wr_en = nl.add_input("wr_en");
  const NetId rd_en = nl.add_input("rd_en");
  std::vector<NetId> din(spec.width);
  for (std::size_t b = 0; b < spec.width; ++b) {
    din[b] = nl.add_input("din" + std::to_string(b));
  }

  // State registers: create flops first so their Q nets can feed the logic,
  // then rewire the D pins. Storage flops are created row-major
  // (word-by-word) so word w bit b is flop index w*width + b — the scan
  // inserter and testbench rely on this layout.
  auto make_state = [&nl](std::size_t count, const std::string& prefix) {
    std::vector<CellId> cells(count);
    std::vector<NetId> q(count);
    for (std::size_t i = 0; i < count; ++i) {
      const NetId dummy = nl.add_net();
      cells[i] = nl.add_cell(CellType::Dff, {dummy}, prefix + std::to_string(i));
      q[i] = nl.output_of(cells[i]);
    }
    return std::make_pair(cells, q);
  };

  auto [storage_cells, storage_q] = make_state(spec.depth * spec.width, "mem");
  auto [wp_cells, wp_q] = make_state(pbits, "wp");
  auto [rp_cells, rp_q] = make_state(pbits, "rp");
  auto [cnt_cells, cnt_q] = make_state(cbits, "cnt");

  // Status flags.
  const NetId full = equals_const(nl, cnt_q, spec.depth);
  const NetId empty = equals_const(nl, cnt_q, 0);
  nl.add_output("full", full);
  nl.add_output("empty", empty);

  const NetId wr_fire = nl.n_and(wr_en, nl.n_not(full));
  const NetId rd_fire = nl.n_and(rd_en, nl.n_not(empty));

  // Write-address decode: one enable per word.
  std::vector<NetId> word_we(spec.depth);
  for (std::size_t w = 0; w < spec.depth; ++w) {
    word_we[w] = nl.n_and(wr_fire, equals_const(nl, wp_q, w));
  }

  // Storage next-state: d = we ? din : q.
  for (std::size_t w = 0; w < spec.depth; ++w) {
    for (std::size_t b = 0; b < spec.width; ++b) {
      const std::size_t i = w * spec.width + b;
      const NetId d = nl.n_mux(word_we[w], storage_q[i], din[b]);
      nl.rewire_fanin(storage_cells[i], 0, d);
    }
  }

  // Pointer updates.
  const auto wp_plus1 = increment(nl, wp_q);
  for (std::size_t i = 0; i < pbits; ++i) {
    nl.rewire_fanin(wp_cells[i], 0, nl.n_mux(wr_fire, wp_q[i], wp_plus1[i]));
  }
  const auto rp_plus1 = increment(nl, rp_q);
  for (std::size_t i = 0; i < pbits; ++i) {
    nl.rewire_fanin(rp_cells[i], 0, nl.n_mux(rd_fire, rp_q[i], rp_plus1[i]));
  }

  // Occupancy counter: +1 on write-only, -1 on read-only, hold otherwise.
  const auto cnt_plus1 = increment(nl, cnt_q);
  const auto cnt_minus1 = decrement(nl, cnt_q);
  const NetId inc_only = nl.n_and(wr_fire, nl.n_not(rd_fire));
  const NetId dec_only = nl.n_and(rd_fire, nl.n_not(wr_fire));
  for (std::size_t i = 0; i < cbits; ++i) {
    const NetId after_inc = nl.n_mux(inc_only, cnt_q[i], cnt_plus1[i]);
    const NetId next = nl.n_mux(dec_only, after_inc, cnt_minus1[i]);
    nl.rewire_fanin(cnt_cells[i], 0, next);
  }

  // Read mux tree: dout[b] = storage[rp][b].
  for (std::size_t b = 0; b < spec.width; ++b) {
    std::vector<NetId> level(spec.depth);
    for (std::size_t w = 0; w < spec.depth; ++w) {
      level[w] = storage_q[w * spec.width + b];
    }
    // Fold pointer bits from LSB upward: at stage s, pairs differ in bit s.
    for (std::size_t s = 0; s < pbits; ++s) {
      std::vector<NetId> next_level(level.size() / 2);
      for (std::size_t i = 0; i < next_level.size(); ++i) {
        next_level[i] = nl.n_mux(rp_q[s], level[2 * i], level[2 * i + 1]);
      }
      level = std::move(next_level);
    }
    nl.add_output("dout" + std::to_string(b), level[0]);
  }

  return nl;
}

BitVec FifoModel::front() const {
  if (words_.empty()) {
    return BitVec(spec_.width);
  }
  return words_.front();
}

bool FifoModel::step(bool wr_en, bool rd_en, const BitVec& din) {
  RETSCAN_CHECK(din.size() == spec_.width, "FifoModel::step: wrong data width");
  const bool wr_fire = wr_en && !full();
  const bool rd_fire = rd_en && !empty();
  if (rd_fire) {
    words_.pop_front();
  }
  if (wr_fire) {
    words_.push_back(din);
  }
  return wr_fire;
}

}  // namespace retscan
