#pragma once

#include <cstddef>
#include <deque>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Parameters of the synchronous FIFO case-study circuit. The paper's
/// evaluation circuit is a 32x32-bit FIFO chosen for its high flip-flop
/// density and absence of error masking; with 5-bit read/write pointers and
/// a 6-bit occupancy counter it has exactly 32*32 + 16 = 1040 flip-flops,
/// matching the paper's 80 chains x 13 flops configuration.
struct FifoSpec {
  std::size_t depth = 32;  ///< number of words; must be a power of two >= 2
  std::size_t width = 32;  ///< bits per word; must be >= 1

  std::size_t pointer_bits() const;
  std::size_t counter_bits() const;
  /// Total flip-flop count: depth*width storage + 2 pointers + counter.
  std::size_t flop_count() const;
};

/// Build the gate-level synchronous FIFO.
///
/// Ports:
///  * inputs `wr_en`, `rd_en`, `din{i}` for i in [0, width)
///  * outputs `dout{i}`, `full`, `empty`
///
/// Per-cycle behaviour (validated against FifoModel in tests):
///  * a write fires when wr_en && !full, storing din at the write pointer;
///  * a read fires when rd_en && !empty, advancing the read pointer;
///  * `dout` combinationally shows the word at the read pointer.
///
/// All flip-flops are plain Dff cells; scan/retention conversion is done
/// afterwards by the scan inserter.
Netlist make_fifo(const FifoSpec& spec);

/// Behavioral golden FIFO used as FIFO_B of the paper's testbench (Fig. 8)
/// and as a checker for the gate-level FIFO.
class FifoModel {
 public:
  explicit FifoModel(const FifoSpec& spec) : spec_(spec) {}

  const FifoSpec& spec() const { return spec_; }
  bool full() const { return words_.size() == spec_.depth; }
  bool empty() const { return words_.empty(); }
  std::size_t size() const { return words_.size(); }

  /// Word that `dout` shows this cycle (head of the queue; zero when empty).
  BitVec front() const;

  /// Apply one clock cycle with the given control/data inputs. Returns true
  /// if a write fired.
  bool step(bool wr_en, bool rd_en, const BitVec& din);

  void clear() { words_.clear(); }

 private:
  FifoSpec spec_;
  std::deque<BitVec> words_;
};

}  // namespace retscan
