#pragma once

#include <cstddef>

namespace retscan {

/// Electrical parameters of a power-gated domain's wake-up path: the
/// header-switch resistance, the package/rail inductance and the domain's
/// internal (discharged) capacitance. Defaults are representative of a
/// 120 nm-class block of ~1k flops: tens of milliohms of rail resistance
/// seen through the package, nanohenry-scale inductance, nanofarad-scale
/// decap+gate capacitance.
struct RushParameters {
  double vdd_volts = 1.2;
  double resistance_ohm = 0.5;     ///< effective series R of switches + rail
  double inductance_nh = 2.0;      ///< rail + package inductance
  double capacitance_nf = 1.5;     ///< domain capacitance to charge at wake
  /// Number of stages the header switches are turned on in. 1 = all at
  /// once (worst rush); larger values model the staggered/daisy-chained
  /// activation of refs [7, 8], which divides the current peak.
  std::size_t stagger_stages = 1;
};

/// Step response of the series RLC wake-up circuit (the model the paper
/// cites from Kim et al. [7]). Charging the discharged domain capacitance
/// through the switch resistance and rail inductance produces a current
/// surge; the di/dt across the rail inductance appears as a supply droop on
/// the always-on rail that feeds the retention latches.
class RushCurrentModel {
 public:
  explicit RushCurrentModel(const RushParameters& params);

  const RushParameters& params() const { return params_; }

  /// Natural frequency (rad/s) and damping ratio of the RLC loop.
  double omega0() const { return omega0_; }
  double damping_ratio() const { return zeta_; }
  bool underdamped() const { return zeta_ < 1.0; }

  /// Domain supply voltage at time t (ns) after switch turn-on.
  double domain_voltage(double t_ns) const;
  /// Inrush current (A) at time t (ns).
  double inrush_current(double t_ns) const;
  /// Voltage disturbance (V) seen on the always-on rail at time t (ns):
  /// the inrush current through the shared package/grid impedance (the
  /// ground-bounce model of ref [7]).
  double rail_disturbance(double t_ns) const;

  /// Peak inrush current (A) over the transient.
  double peak_current() const;
  /// Peak magnitude of the rail disturbance (V). Divided across stagger
  /// stages: S sequential partial turn-ons each charge 1/S of the
  /// capacitance, scaling the peak by ~1/S (refs [7, 8]).
  double peak_droop() const;

  /// Time (ns) for the domain voltage to stay within `tolerance` of Vdd —
  /// the wake-up settling time the controller must wait before restore.
  double settle_time_ns(double tolerance = 0.05) const;

 private:
  double raw_rail_disturbance(double t_ns) const;

  RushParameters params_;
  double omega0_;  // rad/s
  double zeta_;
};

}  // namespace retscan
