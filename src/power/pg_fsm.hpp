#pragma once

#include <string_view>
#include <vector>

namespace retscan {

/// States of the power-gating control sequence. The conventional flow
/// (Fig. 3(a)) uses Active/SleepEntry/Sleep/WakeUp; the proposed flow
/// (Fig. 3(b)) adds Encoding before sleep entry and Decoding (with a
/// possible Correcting excursion) after wake-up.
enum class PgState {
  Active,
  Encoding,    // proposed only: monitor generates & stores parity
  SleepEntry,  // RETAIN asserted, states saved, switches turning off
  Sleep,
  WakeUp,      // switches turning on, waiting for rail to settle, restore
  Decoding,    // proposed only: monitor re-checks parity
  Correcting,  // proposed only: corrector fixing flagged bits
  ErrorFlagged,// proposed only: uncorrectable error reported upward
};

/// Inputs that advance the FSM.
enum class PgEvent {
  SleepRequest,   // 'sleep' goes 1
  WakeRequest,    // 'sleep' goes 0
  SequenceDone,   // current sequence (encode/save/wake/decode) finished
  ErrorsDetected, // decode found at least one syndrome/mismatch
  Corrected,      // corrector finished and recheck is clean
  Uncorrectable,  // detection-only code, or recheck still dirty
};

std::string_view pg_state_name(PgState state);

/// Pure transition logic of the two controller variants. Keeping the FSM
/// free of simulator dependencies lets the tests enumerate the transition
/// relation exhaustively; the orchestration that actually drives a design
/// through a sleep/wake cycle lives in core/ProtectedDesign.
class PgControllerFsm {
 public:
  enum class Flavor { Conventional, Proposed };

  explicit PgControllerFsm(Flavor flavor) : flavor_(flavor) {}

  Flavor flavor() const { return flavor_; }
  PgState state() const { return state_; }
  const std::vector<PgState>& history() const { return history_; }

  /// Apply an event; returns the new state. Illegal events for the current
  /// state are ignored (level-sensitive controls), matching hardware that
  /// samples 'sleep' only in Active/Sleep.
  PgState on_event(PgEvent event);

  void reset();

 private:
  Flavor flavor_;
  PgState state_ = PgState::Active;
  std::vector<PgState> history_{PgState::Active};
};

}  // namespace retscan
