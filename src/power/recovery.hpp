#pragma once

#include <cstddef>

namespace retscan {

/// Parameters of the software state-recovery alternative the paper's
/// Section V sketches: "if large area overhead is not acceptable then the
/// approach of CRC error detection with software recovery may be
/// considered." Instead of always-on Hamming parity memory and inline
/// correction, the system keeps a checkpoint of the retained state in
/// always-on SRAM; on a CRC mismatch after wake-up, an interrupt handler
/// reloads the checkpoint through the scan chains.
struct SoftwareRecoveryParameters {
  double clock_period_ns = 10.0;
  /// Interrupt latency + handler prologue/epilogue, in cycles.
  std::size_t isr_cycles = 400;
  /// Checkpoint fetch width from always-on SRAM (bits per cycle).
  std::size_t mem_bus_bits = 32;
  /// Always-on SRAM characteristics (dense vs. flip-flop parity memory —
  /// this is the entire area argument for the software path).
  double sram_area_um2_per_bit = 2.5;
  double sram_read_energy_pj_per_bit = 0.08;
  /// Host core power while executing the handler.
  double cpu_power_mw = 15.0;
};

/// Latency / energy / always-on-area of one recovery mechanism.
struct RecoveryCosts {
  double detect_latency_ns = 0.0;    ///< decode/check pass
  double repair_latency_ns = 0.0;    ///< correction or checkpoint reload
  double total_latency_ns = 0.0;
  double energy_nj = 0.0;
  double always_on_area_um2 = 0.0;   ///< storage that must survive sleep
  double area_overhead_percent = 0.0;
};

/// Cost analysis comparing hardware correction (Hamming monitors, inline
/// repair during the decode pass + one recheck pass) against software
/// recovery (CRC detect, ISR, checkpoint fetch, scan reload, re-verify).
///
/// Inputs come from the synthesizer's characterization of the two monitor
/// flavors; this class adds the system-level latency/energy arithmetic so
/// the Fig. 4 configuration file can trade them off quantitatively.
class RecoveryAnalyzer {
 public:
  explicit RecoveryAnalyzer(const SoftwareRecoveryParameters& params);

  const SoftwareRecoveryParameters& params() const { return params_; }

  /// Hardware correction: decode pass with inline repair plus a recheck
  /// pass. `dec_energy_nj`/`monitor_area_um2` from the Hamming CostRow.
  RecoveryCosts hardware_correction(std::size_t chain_length, double dec_energy_nj,
                                    double monitor_area_um2, double base_area_um2) const;

  /// Software recovery: CRC check pass, interrupt, checkpoint fetch over
  /// the memory bus, scan reload of all chains, and a re-verify pass.
  /// `dec_energy_nj`/`monitor_area_um2` from the CRC CostRow; the
  /// checkpoint SRAM (flop_count bits) is added to the always-on area.
  RecoveryCosts software_recovery(std::size_t flop_count, std::size_t chain_length,
                                  double dec_energy_nj, double monitor_area_um2,
                                  double base_area_um2) const;

 private:
  SoftwareRecoveryParameters params_;
};

}  // namespace retscan
