#include "power/pg_fsm.hpp"

namespace retscan {

std::string_view pg_state_name(PgState state) {
  switch (state) {
    case PgState::Active: return "active";
    case PgState::Encoding: return "encoding";
    case PgState::SleepEntry: return "sleep-entry";
    case PgState::Sleep: return "sleep";
    case PgState::WakeUp: return "wake-up";
    case PgState::Decoding: return "decoding";
    case PgState::Correcting: return "correcting";
    case PgState::ErrorFlagged: return "error-flagged";
  }
  return "?";
}

PgState PgControllerFsm::on_event(PgEvent event) {
  const bool proposed = flavor_ == Flavor::Proposed;
  PgState next = state_;
  switch (state_) {
    case PgState::Active:
      if (event == PgEvent::SleepRequest) {
        next = proposed ? PgState::Encoding : PgState::SleepEntry;
      }
      break;
    case PgState::Encoding:
      if (event == PgEvent::SequenceDone) {
        next = PgState::SleepEntry;
      }
      break;
    case PgState::SleepEntry:
      if (event == PgEvent::SequenceDone) {
        next = PgState::Sleep;
      }
      break;
    case PgState::Sleep:
      if (event == PgEvent::WakeRequest) {
        next = PgState::WakeUp;
      }
      break;
    case PgState::WakeUp:
      if (event == PgEvent::SequenceDone) {
        next = proposed ? PgState::Decoding : PgState::Active;
      }
      break;
    case PgState::Decoding:
      if (event == PgEvent::SequenceDone) {
        next = PgState::Active;  // clean decode
      } else if (event == PgEvent::ErrorsDetected) {
        next = PgState::Correcting;
      } else if (event == PgEvent::Uncorrectable) {
        next = PgState::ErrorFlagged;
      }
      break;
    case PgState::Correcting:
      if (event == PgEvent::Corrected) {
        next = PgState::Active;
      } else if (event == PgEvent::Uncorrectable) {
        next = PgState::ErrorFlagged;
      }
      break;
    case PgState::ErrorFlagged:
      // Terminal until an explicit reset; upper layers decide recovery.
      break;
  }
  if (next != state_) {
    state_ = next;
    history_.push_back(next);
  }
  return state_;
}

void PgControllerFsm::reset() {
  state_ = PgState::Active;
  history_.assign(1, PgState::Active);
}

}  // namespace retscan
