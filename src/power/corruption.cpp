#include "power/corruption.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace retscan {

CorruptionModel::CorruptionModel(const CorruptionParameters& params,
                                 const RushCurrentModel& rush)
    : params_(params) {
  RETSCAN_CHECK(params_.margin_sigma_volts > 0, "CorruptionModel: sigma must be positive");
  RETSCAN_CHECK(params_.vulnerability >= 0 && params_.vulnerability <= 1,
                "CorruptionModel: vulnerability must be in [0, 1]");
  RETSCAN_CHECK(params_.cluster_fraction >= 0 && params_.cluster_fraction <= 1,
                "CorruptionModel: cluster_fraction must be in [0, 1]");
  const double droop = rush.peak_droop();
  // Gaussian tail: P(margin < droop) over the process spread of margins.
  const double z = (params_.noise_margin_volts - droop) / params_.margin_sigma_volts;
  const double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
  upset_probability_ = std::clamp(tail * params_.vulnerability, 0.0, 1.0);
}

double CorruptionModel::expected_upsets(std::size_t flop_count) const {
  return upset_probability_ * static_cast<double>(flop_count);
}

std::vector<ErrorLocation> CorruptionModel::sample(std::size_t chain_count,
                                                   std::size_t chain_length,
                                                   Rng& rng) const {
  const std::size_t total = chain_count * chain_length;
  // Binomial draw via direct Bernoulli count (probabilities here are small;
  // keep exact semantics rather than a normal approximation).
  std::size_t count = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (rng.next_bool(upset_probability_)) {
      ++count;
    }
  }
  std::vector<ErrorLocation> errors;
  if (count == 0) {
    return errors;
  }

  const ErrorLocation centre{rng.next_below(chain_count),
                             rng.next_below(chain_length)};
  const std::size_t chain_span = std::min(chain_count, 2 * params_.cluster_spread + 1);
  const std::size_t pos_span = std::min(chain_length, 2 * params_.cluster_spread + 1);
  errors.reserve(count);
  std::size_t guard = 0;
  while (errors.size() < count && guard < 100 * count + 1000) {
    ++guard;
    ErrorLocation loc;
    if (rng.next_bool(params_.cluster_fraction) &&
        errors.size() < chain_span * pos_span) {
      loc.chain = (centre.chain + rng.next_below(chain_span)) % chain_count;
      loc.position = (centre.position + rng.next_below(pos_span)) % chain_length;
    } else {
      loc.chain = rng.next_below(chain_count);
      loc.position = rng.next_below(chain_length);
    }
    if (std::find(errors.begin(), errors.end(), loc) == errors.end()) {
      errors.push_back(loc);
    }
  }
  return errors;
}

}  // namespace retscan
