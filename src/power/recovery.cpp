#include "power/recovery.hpp"

#include "util/error.hpp"

namespace retscan {

RecoveryAnalyzer::RecoveryAnalyzer(const SoftwareRecoveryParameters& params)
    : params_(params) {
  RETSCAN_CHECK(params_.clock_period_ns > 0 && params_.mem_bus_bits > 0,
                "RecoveryAnalyzer: bad parameters");
}

RecoveryCosts RecoveryAnalyzer::hardware_correction(std::size_t chain_length,
                                                    double dec_energy_nj,
                                                    double monitor_area_um2,
                                                    double base_area_um2) const {
  RecoveryCosts costs;
  const double pass_ns = static_cast<double>(chain_length) * params_.clock_period_ns;
  costs.detect_latency_ns = pass_ns;           // decode with inline repair
  costs.repair_latency_ns = pass_ns;           // recheck pass
  costs.total_latency_ns = 2.0 * pass_ns;
  costs.energy_nj = 2.0 * dec_energy_nj;
  costs.always_on_area_um2 = monitor_area_um2;
  costs.area_overhead_percent = 100.0 * monitor_area_um2 / base_area_um2;
  return costs;
}

RecoveryCosts RecoveryAnalyzer::software_recovery(std::size_t flop_count,
                                                  std::size_t chain_length,
                                                  double dec_energy_nj,
                                                  double monitor_area_um2,
                                                  double base_area_um2) const {
  RecoveryCosts costs;
  const double t = params_.clock_period_ns;
  const double pass_ns = static_cast<double>(chain_length) * t;
  const double isr_ns = static_cast<double>(params_.isr_cycles) * t;
  const std::size_t fetch_cycles =
      (flop_count + params_.mem_bus_bits - 1) / params_.mem_bus_bits;
  const double fetch_ns = static_cast<double>(fetch_cycles) * t;
  // Reload through the scan chains is one full load (l cycles, all chains
  // in parallel — the checkpoint words are demultiplexed onto the scan
  // inputs), then a CRC re-verify pass.
  const double reload_ns = pass_ns;
  const double verify_ns = pass_ns;

  costs.detect_latency_ns = pass_ns;
  costs.repair_latency_ns = isr_ns + fetch_ns + reload_ns + verify_ns;
  costs.total_latency_ns = costs.detect_latency_ns + costs.repair_latency_ns;

  const double cpu_energy_nj = params_.cpu_power_mw * (isr_ns + fetch_ns) * 1e-3;
  const double mem_energy_nj =
      static_cast<double>(flop_count) * params_.sram_read_energy_pj_per_bit * 1e-3;
  // Two CRC passes (detect + verify) plus one shift pass worth of scan
  // energy for the reload — approximated by the CRC decode energy, whose
  // dominant term is exactly that shift activity.
  costs.energy_nj = 2.0 * dec_energy_nj + dec_energy_nj + cpu_energy_nj + mem_energy_nj;

  const double checkpoint_area =
      static_cast<double>(flop_count) * params_.sram_area_um2_per_bit;
  costs.always_on_area_um2 = monitor_area_um2 + checkpoint_area;
  costs.area_overhead_percent = 100.0 * costs.always_on_area_um2 / base_area_um2;
  return costs;
}

}  // namespace retscan
