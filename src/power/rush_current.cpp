#include "power/rush_current.hpp"

#include <cmath>

#include "util/error.hpp"

namespace retscan {

namespace {
// Effective impedance coupling the power-gated domain's inrush current onto
// the always-on rail that feeds the retention latches (shared package /
// grid impedance). The engineering model used by the rush-current
// literature the paper cites: droop is proportional to the peak inrush
// current through this shared impedance.
constexpr double kSharedImpedanceOhm = 0.35;
constexpr double kNsToS = 1e-9;
}  // namespace

RushCurrentModel::RushCurrentModel(const RushParameters& params) : params_(params) {
  RETSCAN_CHECK(params_.resistance_ohm > 0 && params_.inductance_nh > 0 &&
                    params_.capacitance_nf > 0 && params_.vdd_volts > 0,
                "RushCurrentModel: parameters must be positive");
  RETSCAN_CHECK(params_.stagger_stages >= 1, "RushCurrentModel: stagger_stages >= 1");
  const double l = params_.inductance_nh * 1e-9;
  const double c = params_.capacitance_nf * 1e-9;
  omega0_ = 1.0 / std::sqrt(l * c);
  zeta_ = params_.resistance_ohm / 2.0 * std::sqrt(c / l);
}

double RushCurrentModel::domain_voltage(double t_ns) const {
  const double t = t_ns * kNsToS;
  if (t <= 0) {
    return 0.0;
  }
  const double v = params_.vdd_volts;
  const double a = zeta_ * omega0_;
  if (underdamped()) {
    const double wd = omega0_ * std::sqrt(1.0 - zeta_ * zeta_);
    return v * (1.0 - std::exp(-a * t) *
                          (std::cos(wd * t) + a / wd * std::sin(wd * t)));
  }
  // Critically/over-damped closed form.
  const double s = omega0_ * std::sqrt(std::max(zeta_ * zeta_ - 1.0, 1e-12));
  const double s1 = -a + s;
  const double s2 = -a - s;
  return v * (1.0 - (s2 * std::exp(s1 * t) - s1 * std::exp(s2 * t)) / (s2 - s1));
}

double RushCurrentModel::inrush_current(double t_ns) const {
  const double t = t_ns * kNsToS;
  if (t <= 0) {
    return 0.0;
  }
  const double c = params_.capacitance_nf * 1e-9;
  const double v = params_.vdd_volts;
  const double a = zeta_ * omega0_;
  // i = C dV/dt.
  if (underdamped()) {
    const double wd = omega0_ * std::sqrt(1.0 - zeta_ * zeta_);
    const double amplitude = v * (a * a + wd * wd) / wd;
    return c * amplitude * std::exp(-a * t) * std::sin(wd * t);
  }
  const double s = omega0_ * std::sqrt(std::max(zeta_ * zeta_ - 1.0, 1e-12));
  const double s1 = -a + s;
  const double s2 = -a - s;
  return c * v * s1 * s2 / (s2 - s1) * (std::exp(s2 * t) - std::exp(s1 * t));
}

double RushCurrentModel::raw_rail_disturbance(double t_ns) const {
  // Droop seen by the always-on rail: the inrush current flowing through
  // the shared package/grid impedance. Proportional-to-current is the
  // standard ground-bounce engineering model ([7]): more damping (bigger
  // switch resistance, ref [7]'s gate-voltage control) means a smaller
  // current peak and a smaller droop.
  return kSharedImpedanceOhm * inrush_current(t_ns);
}

double RushCurrentModel::rail_disturbance(double t_ns) const {
  return raw_rail_disturbance(t_ns) / static_cast<double>(params_.stagger_stages);
}

double RushCurrentModel::peak_current() const {
  // Sample the first few natural periods densely.
  const double horizon_ns = 8.0 * 2.0 * M_PI / omega0_ * 1e9;
  double peak = 0.0;
  for (int i = 1; i <= 4000; ++i) {
    const double t_ns = horizon_ns * i / 4000.0;
    peak = std::max(peak, std::abs(inrush_current(t_ns)));
  }
  return peak / static_cast<double>(params_.stagger_stages);
}

double RushCurrentModel::peak_droop() const {
  return kSharedImpedanceOhm * peak_current();
}

double RushCurrentModel::settle_time_ns(double tolerance) const {
  RETSCAN_CHECK(tolerance > 0 && tolerance < 1, "settle_time_ns: bad tolerance");
  const double horizon_ns = 16.0 * 2.0 * M_PI / omega0_ * 1e9;
  const double band = tolerance * params_.vdd_volts;
  double last_violation = 0.0;
  for (int i = 1; i <= 8000; ++i) {
    const double t_ns = horizon_ns * i / 8000.0;
    if (std::abs(domain_voltage(t_ns) - params_.vdd_volts) > band) {
      last_violation = t_ns;
    }
  }
  // Staggering stretches wake-up roughly linearly while taming the peak.
  return last_violation * static_cast<double>(params_.stagger_stages);
}

}  // namespace retscan
