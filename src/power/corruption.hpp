#pragma once

#include <cstddef>
#include <vector>

#include "inject/injector.hpp"
#include "power/rush_current.hpp"
#include "util/rng.hpp"

namespace retscan {

/// Parameters translating a supply-rail disturbance into retention-latch
/// upsets. A high-Vt balloon latch flips when the transient noise on its
/// rail exceeds its static noise margin; with process spread the per-latch
/// upset probability is the Gaussian tail beyond the margin, scaled by a
/// vulnerability factor (only latches whose internal node is being refreshed
/// during the transient window are exposed).
struct CorruptionParameters {
  double noise_margin_volts = 0.35;
  double margin_sigma_volts = 0.08;
  /// Fraction of latches electrically exposed during the transient.
  double vulnerability = 0.01;
  /// Spatial clustering: upsets concentrate around the point of worst IR
  /// drop. Radius of the cluster window (in chain/position units).
  std::size_t cluster_spread = 2;
  /// Probability that an upset joins the cluster rather than landing
  /// uniformly (the paper observed multiple errors "closely clustered").
  double cluster_fraction = 0.9;
};

/// Samples which retention latches flip at wake-up, given the electrical
/// rush-current model. This is the substitute for silicon: the paper
/// injected errors with LFSRs precisely because the physical corruption is
/// stochastic; we generate the same shapes (rare single upsets at modest
/// droop, clustered multi-bit bursts at severe droop).
class CorruptionModel {
 public:
  CorruptionModel(const CorruptionParameters& params, const RushCurrentModel& rush);

  const CorruptionParameters& params() const { return params_; }

  /// Per-latch upset probability for the configured droop.
  double upset_probability() const { return upset_probability_; }

  /// Expected number of upsets in a fabric of `flop_count` latches.
  double expected_upsets(std::size_t flop_count) const;

  /// Sample upset locations for a chains x length fabric. The count is
  /// Binomial(N, p); locations are clustered per `cluster_fraction`.
  std::vector<ErrorLocation> sample(std::size_t chain_count, std::size_t chain_length,
                                    Rng& rng) const;

 private:
  CorruptionParameters params_;
  double upset_probability_;
};

}  // namespace retscan
