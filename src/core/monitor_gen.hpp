#pragma once

#include <cstddef>
#include <vector>

#include "coding/crc.hpp"
#include "coding/hamming.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_insert.hpp"

namespace retscan {

/// Control nets shared by every generated monitor block. These are the
/// inputs the (proposed) power-gating controller drives; see Fig. 2/3(b).
struct MonitorControls {
  NetId mon_en = kNullNet;      ///< monitoring pass in progress (shift/absorb)
  NetId mon_decode = kNullNet;  ///< 0 = encode pass, 1 = decode pass
  NetId mon_clear = kNullNet;   ///< sync clear of CRC registers + sticky error
  NetId sig_capture = kNullNet; ///< CRC: latch signature at end of encode
  NetId sig_compare = kNullNet; ///< CRC: compare & record mismatch after decode
};

/// Result of structural monitor generation.
struct MonitorBuildResult {
  /// Per chain: the (possibly corrected) scan-out bit that should feed the
  /// chain's scan-in during circulation. For detection-only monitors this
  /// is simply the chain's scan-out net.
  std::vector<NetId> feedback;
  /// Sticky error flag net (registered, cleared by mon_clear).
  NetId error_flag = kNullNet;
  /// First cell id of the generated logic — everything from here on is
  /// always-on monitor area, used for the overhead columns of Tables I-III.
  CellId first_monitor_cell = kNullCell;
};

/// Generate gate-level Hamming(n,k) state-monitoring and error-correction
/// blocks (Fig. 2) for the given chains. Chains are grouped k at a time;
/// each group gets: r parity XOR trees, an l-deep r-wide always-on parity
/// shift memory with encode/recirculate muxing, a syndrome comparator, a
/// k-way syndrome decoder, and XOR correctors splicing fixes into the
/// feedback stream during decode. All generated cells live in the always-on
/// domain.
/// `extended` adds SEC-DED operation: one extra overall-parity XOR tree
/// and memory column per group, with correction gated on the overall
/// mismatch so double errors are flagged instead of miscorrected.
MonitorBuildResult build_hamming_monitors(Netlist& netlist, const ScanChains& chains,
                                          const HammingCode& code,
                                          const MonitorControls& controls,
                                          bool extended = false);

/// Generate gate-level CRC-16 detection monitors: one `group_width`-bit
/// parallel CRC register per chain group (the parallel next-state XOR
/// network is derived symbolically from the serial LFSR), a 16-bit
/// signature register captured at the end of the encode pass, and a
/// comparator feeding the sticky error flag. Detection only: feedback is
/// the raw scan-out.
MonitorBuildResult build_crc_monitors(Netlist& netlist, const ScanChains& chains,
                                      const Crc16& crc, std::size_t group_width,
                                      const MonitorControls& controls);

/// Wire the scan-in of every chain through the mode multiplexers of Fig. 2 /
/// Fig. 5(b): in monitoring modes the chain consumes `feedback[c]`; in test
/// mode (test_mode net high) chains concatenate per `test_config`, with
/// external ports `tsi{g}` / `tso{g}` created for each test group. Replaces
/// the SI wiring made by insert_scan.
void wire_scan_inputs(Netlist& netlist, const ScanChains& chains,
                      const std::vector<NetId>& feedback,
                      const TestModeConfig& test_config, NetId test_mode);

}  // namespace retscan
