#include "core/synthesizer.hpp"

#include "coding/secded.hpp"

#include <iomanip>

#include "scan/scan_io.hpp"
#include "util/error.hpp"

namespace retscan {

ReliabilitySynthesizer::ReliabilitySynthesizer(NetlistFactory factory, TechLibrary tech,
                                               double clock_period_ns)
    : factory_(std::move(factory)), tech_(std::move(tech)),
      clock_period_ns_(clock_period_ns) {
  RETSCAN_CHECK(clock_period_ns_ > 0, "ReliabilitySynthesizer: bad clock period");
}

CostRow ReliabilitySynthesizer::characterize(const ProtectionConfig& config,
                                             std::uint64_t seed) const {
  const ProtectedDesign design(factory_(), config);
  RetentionSession session(design);

  // Load a random resident state so shift activity is realistic (~50%
  // toggle density, as in a FIFO full of random payload).
  Rng rng(seed);
  std::vector<BitVec> state;
  state.reserve(design.chains().chain_count());
  for (std::size_t c = 0; c < design.chains().chain_count(); ++c) {
    state.push_back(rng.next_bits(design.chain_length()));
  }
  scan_restore(session.sim(), design.chains(), state);

  CostRow row;
  switch (config.kind) {
    case CodeKind::CrcDetect:
      row.code_name = "CRC-16";
      break;
    case CodeKind::HammingCorrect:
      row.code_name =
          config.secded ? SecDedCode(config.hamming_r).name() : config.hamming().name();
      row.capability_percent = 100.0 * config.hamming().redundancy();
      break;
    case CodeKind::HammingPlusCrc:
      row.code_name =
          (config.secded ? SecDedCode(config.hamming_r).name() : config.hamming().name()) +
          "+CRC-16";
      row.capability_percent = 100.0 * config.hamming().redundancy();
      break;
  }
  row.chain_count = config.chain_count;
  row.chain_length = design.chain_length();
  row.base_area_um2 = design.base_area(tech_).total_um2;
  row.total_area_um2 = row.base_area_um2 + design.monitor_area(tech_).total_um2;
  row.overhead_percent = design.overhead_percent(tech_);

  // Coding latency per Section III: l cycles of circulation.
  row.latency_ns = static_cast<double>(design.chain_length()) * clock_period_ns_;

  const ActivityReport enc = session.measure_encode(tech_);
  row.enc_power_mw = enc.average_power_mw(clock_period_ns_);
  row.enc_energy_nj = row.enc_power_mw * row.latency_ns * 1e-3;  // mW*ns = pJ

  const ActivityReport dec = session.measure_decode(tech_);
  row.dec_power_mw = dec.average_power_mw(clock_period_ns_);
  row.dec_energy_nj = row.dec_power_mw * row.latency_ns * 1e-3;
  return row;
}

std::vector<CostRow> ReliabilitySynthesizer::sweep(
    const std::vector<ProtectionConfig>& configs) const {
  std::vector<CostRow> rows;
  rows.reserve(configs.size());
  for (const ProtectionConfig& config : configs) {
    rows.push_back(characterize(config));
  }
  return rows;
}

std::vector<std::size_t> ReliabilitySynthesizer::pareto_front(
    const std::vector<CostRow>& rows) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < rows.size() && !dominated; ++j) {
      if (i == j) {
        continue;
      }
      const bool no_worse = rows[j].overhead_percent <= rows[i].overhead_percent &&
                            rows[j].dec_energy_nj <= rows[i].dec_energy_nj;
      const bool strictly_better = rows[j].overhead_percent < rows[i].overhead_percent ||
                                   rows[j].dec_energy_nj < rows[i].dec_energy_nj;
      dominated = no_worse && strictly_better;
    }
    if (!dominated) {
      front.push_back(i);
    }
  }
  return front;
}

const CostRow& ReliabilitySynthesizer::pick(const std::vector<CostRow>& rows,
                                            const QualityConstraints& constraints) {
  const CostRow* best = nullptr;
  for (const CostRow& row : rows) {
    if (row.overhead_percent > constraints.max_area_overhead_percent ||
        row.latency_ns > constraints.max_latency_ns ||
        row.dec_energy_nj > constraints.max_energy_nj ||
        row.capability_percent < constraints.min_capability_percent) {
      continue;
    }
    if (best == nullptr || row.dec_energy_nj < best->dec_energy_nj) {
      best = &row;
    }
  }
  RETSCAN_CHECK(best != nullptr,
                "ReliabilitySynthesizer::pick: no configuration satisfies the constraints");
  return *best;
}

void print_cost_table(std::ostream& os, const std::string& title,
                      const std::vector<CostRow>& rows) {
  os << title << "\n";
  os << std::setw(16) << "code" << std::setw(5) << "W" << std::setw(6) << "l"
     << std::setw(12) << "area um^2" << std::setw(8) << "ovh %" << std::setw(10)
     << "enc mW" << std::setw(10) << "dec mW" << std::setw(10) << "t ns"
     << std::setw(10) << "enc nJ" << std::setw(10) << "dec nJ" << std::setw(8)
     << "cap %" << "\n";
  os << std::fixed;
  for (const CostRow& row : rows) {
    os << std::setw(16) << row.code_name << std::setw(5) << row.chain_count
       << std::setw(6) << row.chain_length << std::setprecision(0) << std::setw(12)
       << row.total_area_um2 << std::setprecision(1) << std::setw(8)
       << row.overhead_percent << std::setprecision(2) << std::setw(10)
       << row.enc_power_mw << std::setw(10) << row.dec_power_mw
       << std::setprecision(0) << std::setw(10) << row.latency_ns
       << std::setprecision(2) << std::setw(10) << row.enc_energy_nj << std::setw(10)
       << row.dec_energy_nj << std::setprecision(2) << std::setw(8)
       << row.capability_percent << "\n";
  }
  os.unsetf(std::ios_base::floatfield);
}

}  // namespace retscan
