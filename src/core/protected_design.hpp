#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "coding/crc.hpp"
#include "coding/hamming.hpp"
#include "core/monitor_gen.hpp"
#include "inject/injector.hpp"
#include "netlist/netlist.hpp"
#include "netlist/techlib.hpp"
#include "power/pg_fsm.hpp"
#include "scan/scan_insert.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace retscan {

/// Which coding scheme the state-monitoring blocks implement.
enum class CodeKind {
  CrcDetect,       ///< CRC-16 detection only (software recovery assumed)
  HammingCorrect,  ///< Hamming(n,k) detection + hardware correction
  HammingPlusCrc,  ///< both, as in the paper's FPGA validation (Section IV)
};

/// Configuration of a reliable state-retention power-gated design.
struct ProtectionConfig {
  CodeKind kind = CodeKind::HammingCorrect;
  /// Hamming parity bit count r: 3 -> (7,4) ... 6 -> (63,57).
  unsigned hamming_r = 3;
  /// Extend the Hamming monitors to SEC-DED: one extra stored parity bit
  /// per word; double errors are flagged instead of miscorrected.
  bool secded = false;
  std::uint16_t crc_polynomial = 0x1021;
  /// Number of scan chains W (Tables I-III sweep this).
  std::size_t chain_count = 4;
  /// Chains per CRC monitor block (the paper uses the 4-bit test width).
  /// Chains per CRC monitor block; 0 (default) means one wide block
  /// absorbing all W chains per cycle — the only geometry consistent with
  /// the paper's Table I overheads (2.8%..9.2%), since per-4-chain CRC
  /// blocks would cost nearly as much as Hamming parity memory. Smaller
  /// widths localize detection to chain groups at extra area (ablation).
  std::size_t crc_group_width = 0;
  /// Manufacturing-test I/O width T for the Fig. 5(b) concatenation.
  std::size_t test_width = 4;
  ChainAssignment assignment = ChainAssignment::Blocked;
  DomainId gated_domain = 1;
  /// Generate the Fig. 3(b) controller as gates inside the design. The
  /// control nets (se/retain/mon_*) are then driven by the controller's
  /// FSM instead of external input ports, and the design is operated
  /// through HardwareRetentionSession via a single `sleep` input.
  bool hardware_controller = false;
  /// Wake-up settle wait of the generated controller, in cycles.
  std::size_t settle_cycles = 4;

  HammingCode hamming() const { return HammingCode(hamming_r); }
  Crc16 crc() const { return Crc16(crc_polynomial, "CRC-16"); }
};

/// A power-gated design wrapped with the paper's protection architecture:
/// retention scan chains, state-monitoring blocks, error-correction blocks,
/// mode multiplexers and the manufacturing-test concatenation. Construction
/// performs the structural work of the reliability-aware synthesizer's
/// middle stages (Fig. 4); cost accounting distinguishes the original
/// design (gated domain) from the always-on monitoring logic.
class ProtectedDesign {
 public:
  ProtectedDesign(Netlist base, const ProtectionConfig& config);

  const Netlist& netlist() const { return netlist_; }
  const ProtectionConfig& config() const { return config_; }
  const ScanChains& chains() const { return chains_; }
  const TestModeConfig& test_config() const { return test_config_; }
  const MonitorControls& controls() const { return controls_; }
  std::size_t chain_length() const { return chains_.length(); }
  std::size_t flop_count() const { return chains_.flop_count(); }

  /// Area of the original design + scan conversion (everything before the
  /// monitor cells).
  AreaReport base_area(const TechLibrary& tech) const;
  /// Area of the generated monitoring/correction/mux logic.
  AreaReport monitor_area(const TechLibrary& tech) const;
  /// Monitor overhead relative to the base design, in percent — the "%"
  /// column of Tables I-III.
  double overhead_percent(const TechLibrary& tech) const;

 private:
  ProtectionConfig config_;
  Netlist netlist_;
  ScanChains chains_;
  TestModeConfig test_config_;
  MonitorControls controls_;
  CellId first_monitor_cell_ = kNullCell;
  NetId error_flag_net_ = kNullNet;
  NetId ctrl_se_net_ = kNullNet;
  NetId ctrl_retain_net_ = kNullNet;
  NetId sleep_net_ = kNullNet;
  NetId pswitch_en_net_ = kNullNet;
  NetId ctrl_active_net_ = kNullNet;
  NetId ctrl_error_net_ = kNullNet;

  friend class RetentionSession;
  friend class HardwareRetentionSession;
  friend class PackedRetentionSession;
};

/// Drives a simulated ProtectedDesign through the proposed power-gating
/// control sequence (Fig. 3(b)): encode -> sleep -> (corruption) -> wake ->
/// decode/correct, tracking the controller FSM. The power-gated circuit
/// must be functionally idle (inputs quiescent) while sequences run — the
/// standard precondition for entering sleep.
class RetentionSession {
 public:
  explicit RetentionSession(const ProtectedDesign& design);

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  const PgControllerFsm& fsm() const { return fsm_; }
  /// Start a fresh sleep episode (controller back to Active).
  void reset_fsm() { fsm_.reset(); }

  /// Encode sequence: clear, circulate l cycles storing parity, capture
  /// CRC signatures.
  void encode();

  /// Sleep entry: assert RETAIN, one save edge, switches off. Master state
  /// garbage is drawn from `garbage_rng` (zeros if null).
  void enter_sleep(Rng* garbage_rng = nullptr);

  /// Flip retention latches while asleep (rush-current upsets).
  void corrupt(const std::vector<ErrorLocation>& upsets);

  /// Wake: switches on, RETAIN released, state restored from latches.
  void wake();

  /// Decode sequence: clear, circulate l cycles checking (and, for Hamming,
  /// correcting) the state, compare CRC signatures. Returns the sticky
  /// error flag.
  bool decode();

  bool error_flag() const;

  /// Full protected sleep/wake cycle. For Hamming configurations a dirty
  /// decode triggers one re-check pass (the Correcting state); the cycle
  /// ends in Active if the recheck is clean, ErrorFlagged otherwise.
  struct CycleOutcome {
    bool errors_detected = false;
    bool recheck_clean = false;
    std::size_t decode_passes = 0;
    PgState final_state = PgState::Active;
  };
  CycleOutcome sleep_wake_cycle(const std::vector<ErrorLocation>& upsets,
                                Rng* garbage_rng = nullptr);

  /// Encode/decode cost measurement: runs the sequence with activity
  /// accounting and returns the report (includes the controller's clear /
  /// capture strobes; the coding latency proper is chain_length cycles).
  ActivityReport measure_encode(const TechLibrary& tech);
  ActivityReport measure_decode(const TechLibrary& tech);

 private:
  void set_controls(bool se, bool mon_en, bool mon_decode, bool test_mode);

  const ProtectedDesign* design_;
  Simulator sim_;
  PgControllerFsm fsm_;
};

/// 64-lane batch variant of RetentionSession: drives one PackedSim through
/// the same Fig. 3(b) control sequence, with every lane carrying an
/// independent corruption trial. Control inputs are broadcast (the
/// controller sequence does not depend on the injected errors); corruption,
/// power-off garbage and the monitor error flags are per lane, so one
/// sleep/wake episode evaluates 64 injection campaigns at once.
class PackedRetentionSession {
 public:
  explicit PackedRetentionSession(const ProtectedDesign& design);

  PackedSim& sim() { return sim_; }
  const PackedSim& sim() const { return sim_; }

  /// Encode sequence: clear, circulate l cycles storing parity, capture
  /// CRC signatures (all lanes in lockstep).
  void encode();
  /// Sleep entry: assert RETAIN, one save edge, switches off. Master
  /// garbage is independent per lane.
  void enter_sleep(Rng* garbage_rng = nullptr);
  /// Flip retention latches while asleep; per_lane[b] applies to lane b.
  void corrupt(const std::vector<std::vector<ErrorLocation>>& per_lane);
  /// Wake: switches on, RETAIN released, state restored from latches.
  void wake();
  /// Decode sequence; returns the per-lane sticky error flags.
  LaneWord decode();

  LaneWord error_flags() const;

  /// Per-lane outcome of a full sleep/wake cycle. recheck_clean mirrors the
  /// scalar FSM: lanes with a clean first decode are clean; for correctable
  /// configurations a re-check pass decides the rest; detection-only
  /// configurations never repair, so detected lanes stay dirty. A lane is
  /// ErrorFlagged (uncorrectable) iff detected and not recheck-clean.
  struct CycleOutcome {
    LaneWord errors_detected = 0;
    LaneWord recheck_clean = 0;
    std::size_t decode_passes = 0;
  };
  CycleOutcome sleep_wake_cycle(const std::vector<std::vector<ErrorLocation>>& per_lane,
                                Rng* garbage_rng = nullptr);

 private:
  void set_controls(bool se, bool mon_en, bool mon_decode, bool test_mode);

  const ProtectedDesign* design_;
  PackedSim sim_;
};

/// Drives a ProtectedDesign built with `hardware_controller = true`: the
/// entire Fig. 3(b) sequence runs in the generated gate-level FSM, and this
/// session only toggles the `sleep` request and emulates the power switch
/// fabric (observing the controller's pswitch_en output each cycle, cutting
/// or restoring the gated domain accordingly — the one physical effect a
/// logic simulator cannot produce by itself).
class HardwareRetentionSession {
 public:
  explicit HardwareRetentionSession(const ProtectedDesign& design,
                                    std::uint64_t garbage_seed = 1);

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  void set_sleep(bool value);
  /// One clock cycle + power-switch follower.
  void step(std::size_t count = 1);

  bool active() const { return sim_.net_value(design_->ctrl_active_net_); }
  bool error() const { return sim_.net_value(design_->ctrl_error_net_); }
  bool asleep() const { return !sim_.net_value(design_->pswitch_en_net_); }

  /// Flip retention latches; only legal while the domain is off.
  void corrupt(const std::vector<ErrorLocation>& upsets);

  struct CycleOutcome {
    bool completed = false;  ///< returned to Active
    bool error = false;      ///< latched in the Error state
    std::size_t cycles = 0;  ///< total clock cycles spent
  };
  /// Full autonomous sleep/wake episode: raise sleep, wait for the domain
  /// to go down, inject `upsets`, drop sleep, run until the controller
  /// lands in Active or Error.
  CycleOutcome run_sleep_wake(const std::vector<ErrorLocation>& upsets,
                              std::size_t max_cycles = 100000);

 private:
  const ProtectedDesign* design_;
  Simulator sim_;
  Rng garbage_rng_;
};

}  // namespace retscan
