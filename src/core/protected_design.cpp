#include "core/protected_design.hpp"

#include "core/controller_gen.hpp"

#include "util/error.hpp"

namespace retscan {

ProtectedDesign::ProtectedDesign(Netlist base, const ProtectionConfig& config)
    : config_(config), netlist_(std::move(base)) {
  // Stage 1 of the reliability-aware synthesizer: scan insertion with
  // retention flops.
  ScanInsertionOptions scan_options;
  scan_options.chain_count = config_.chain_count;
  scan_options.style = ScanStyle::Retention;
  scan_options.assignment = config_.assignment;
  scan_options.gated_domain = config_.gated_domain;
  chains_ = insert_scan(netlist_, scan_options);

  // Stage 2: monitoring/correction logic generation. With a hardware
  // controller the control nets are placeholders the controller later
  // claims; otherwise they are external input ports driven by
  // RetentionSession (the testbench plays controller).
  if (config_.hardware_controller) {
    controls_.mon_en = netlist_.add_net("mon_en");
    controls_.mon_decode = netlist_.add_net("mon_decode");
    controls_.mon_clear = netlist_.add_net("mon_clear");
    controls_.sig_capture = netlist_.add_net("sig_capture");
    controls_.sig_compare = netlist_.add_net("sig_compare");
    // Take over the se/retain nets that scan insertion created as ports:
    // all existing readers are rewired onto controller-driven nets; the
    // original ports become unconnected (reported by lint as floating,
    // like the per-chain si ports).
    ctrl_se_net_ = netlist_.add_net("ctrl_se");
    ctrl_retain_net_ = netlist_.add_net("ctrl_retain");
    const CellId limit = static_cast<CellId>(netlist_.cell_count());
    netlist_.replace_readers(chains_.se, ctrl_se_net_, limit);
    netlist_.replace_readers(chains_.retain, ctrl_retain_net_, limit);
  } else {
    controls_.mon_en = netlist_.add_input("mon_en");
    controls_.mon_decode = netlist_.add_input("mon_decode");
    controls_.mon_clear = netlist_.add_input("mon_clear");
    controls_.sig_capture = netlist_.add_input("sig_capture");
    controls_.sig_compare = netlist_.add_input("sig_compare");
  }
  const NetId test_mode = netlist_.add_input("test_mode");

  first_monitor_cell_ = static_cast<CellId>(netlist_.cell_count());

  std::vector<NetId> feedback = chains_.so;
  std::vector<NetId> error_flags;
  if (config_.kind == CodeKind::HammingCorrect || config_.kind == CodeKind::HammingPlusCrc) {
    const MonitorBuildResult hamming = build_hamming_monitors(
        netlist_, chains_, config_.hamming(), controls_, config_.secded);
    feedback = hamming.feedback;
    error_flags.push_back(hamming.error_flag);
  }
  if (config_.kind == CodeKind::CrcDetect || config_.kind == CodeKind::HammingPlusCrc) {
    const std::size_t crc_width =
        config_.crc_group_width == 0 ? config_.chain_count : config_.crc_group_width;
    const MonitorBuildResult crc =
        build_crc_monitors(netlist_, chains_, config_.crc(), crc_width, controls_);
    error_flags.push_back(crc.error_flag);
  }
  RETSCAN_CHECK(!error_flags.empty(), "ProtectedDesign: no monitors configured");
  error_flag_net_ =
      error_flags.size() == 1 ? error_flags[0] : netlist_.n_or_tree(error_flags);
  netlist_.add_output("mon_err", error_flag_net_);

  // Stage 3: mode multiplexers + manufacturing-test concatenation.
  test_config_ = make_test_concatenation(config_.chain_count, config_.test_width);
  wire_scan_inputs(netlist_, chains_, feedback, test_config_, test_mode);

  // Stage 4 (optional): generate and hook up the gate-level controller.
  if (config_.hardware_controller) {
    PgControllerSpec spec;
    spec.chain_length = chains_.length();
    spec.settle_cycles = config_.settle_cycles;
    spec.has_crc = config_.kind != CodeKind::HammingCorrect;
    spec.can_correct = config_.kind != CodeKind::CrcDetect;
    const PgControllerPorts ports = build_pg_controller(
        netlist_, spec, error_flag_net_, ctrl_se_net_, ctrl_retain_net_, controls_);
    sleep_net_ = ports.sleep;
    pswitch_en_net_ = ports.pswitch_en;
    ctrl_active_net_ = ports.ctrl_active;
    ctrl_error_net_ = ports.ctrl_error;
  }
}

namespace {
AreaReport area_of_range(const Netlist& nl, const TechLibrary& tech, CellId begin,
                         CellId end) {
  AreaReport report;
  for (CellId id = begin; id < end; ++id) {
    const Cell& c = nl.cell(id);
    const double a = tech.physics(c.type).area_um2;
    report.total_um2 += a;
    if (cell_is_sequential(c.type)) {
      report.sequential_um2 += a;
      if (cell_is_flop(c.type)) {
        ++report.flop_count;
      }
    } else {
      report.combinational_um2 += a;
    }
    if (c.type != CellType::Input && c.type != CellType::Output) {
      ++report.cell_count;
    }
  }
  return report;
}
}  // namespace

AreaReport ProtectedDesign::base_area(const TechLibrary& tech) const {
  return area_of_range(netlist_, tech, 0, first_monitor_cell_);
}

AreaReport ProtectedDesign::monitor_area(const TechLibrary& tech) const {
  return area_of_range(netlist_, tech, first_monitor_cell_,
                       static_cast<CellId>(netlist_.cell_count()));
}

double ProtectedDesign::overhead_percent(const TechLibrary& tech) const {
  const double base = base_area(tech).total_um2;
  const double monitor = monitor_area(tech).total_um2;
  return base > 0 ? 100.0 * monitor / base : 0.0;
}

namespace {

// The Fig. 3(b) control sequences, shared by the scalar and packed session
// facades so the protocol exists in exactly one place. `drive` sets one
// control input to a boolean (broadcast across lanes on the packed facade).

template <typename Drive>
void seq_set_controls(const ProtectedDesign& design, const Drive& drive,
                      bool se, bool mon_en, bool mon_decode, bool test_mode) {
  drive(design.chains().se, se);
  drive(design.controls().mon_en, mon_en);
  drive(design.controls().mon_decode, mon_decode);
  drive(design.netlist().find_net("test_mode"), test_mode);
}

template <typename Sim, typename Drive>
void seq_pulse(Sim& sim, const Drive& drive, NetId net) {
  drive(net, true);
  sim.step();
  drive(net, false);
}

/// Encode: clear, circulate l cycles storing parity, capture CRC
/// signatures. Decode is the same circulation with mon_decode asserted and
/// a signature compare at the end.
template <typename Sim, typename Drive>
void seq_monitor_pass(Sim& sim, const ProtectedDesign& design, const Drive& drive,
                      bool decode) {
  seq_set_controls(design, drive, false, false, false, false);
  seq_pulse(sim, drive, design.controls().mon_clear);
  seq_set_controls(design, drive, true, true, decode, false);
  sim.step_n(design.chain_length());
  seq_set_controls(design, drive, false, false, false, false);
  if (design.config().kind != CodeKind::HammingCorrect) {
    seq_pulse(sim, drive,
              decode ? design.controls().sig_compare : design.controls().sig_capture);
  }
}

}  // namespace

RetentionSession::RetentionSession(const ProtectedDesign& design)
    : design_(&design),
      sim_(design.netlist()),
      fsm_(PgControllerFsm::Flavor::Proposed) {
  RETSCAN_CHECK(!design.config().hardware_controller,
                "RetentionSession: design has a hardware controller; use "
                "HardwareRetentionSession");
  set_controls(false, false, false, false);
  sim_.set_input(design_->controls().mon_clear, false);
  sim_.set_input(design_->controls().sig_capture, false);
  sim_.set_input(design_->controls().sig_compare, false);
  sim_.set_input(design_->chains().retain, false);
  sim_.eval();
}

void RetentionSession::set_controls(bool se, bool mon_en, bool mon_decode, bool test_mode) {
  seq_set_controls(*design_, [this](NetId n, bool v) { sim_.set_input(n, v); },
                   se, mon_en, mon_decode, test_mode);
}

void RetentionSession::encode() {
  fsm_.on_event(PgEvent::SleepRequest);
  seq_monitor_pass(sim_, *design_, [this](NetId n, bool v) { sim_.set_input(n, v); },
                   /*decode=*/false);
  fsm_.on_event(PgEvent::SequenceDone);  // Encoding -> SleepEntry
}

void RetentionSession::enter_sleep(Rng* garbage_rng) {
  set_controls(false, false, false, false);
  sim_.set_input(design_->chains().retain, true);
  sim_.step();  // save edge: balloon latches sample the masters
  sim_.power_off(design_->config().gated_domain, garbage_rng);
  fsm_.on_event(PgEvent::SequenceDone);  // SleepEntry -> Sleep
}

void RetentionSession::corrupt(const std::vector<ErrorLocation>& upsets) {
  RETSCAN_CHECK(!sim_.domain_powered(design_->config().gated_domain),
                "RetentionSession::corrupt: domain must be asleep");
  ErrorInjector::flip_retention(sim_, design_->chains(), upsets);
}

void RetentionSession::wake() {
  fsm_.on_event(PgEvent::WakeRequest);
  sim_.power_on(design_->config().gated_domain);
  sim_.set_input(design_->chains().retain, false);
  sim_.step();  // restore edge: masters reload from the balloon latches
  fsm_.on_event(PgEvent::SequenceDone);  // WakeUp -> Decoding
}

bool RetentionSession::decode() {
  seq_monitor_pass(sim_, *design_, [this](NetId n, bool v) { sim_.set_input(n, v); },
                   /*decode=*/true);
  return error_flag();
}

bool RetentionSession::error_flag() const {
  return sim_.net_value(design_->error_flag_net_);
}

RetentionSession::CycleOutcome RetentionSession::sleep_wake_cycle(
    const std::vector<ErrorLocation>& upsets, Rng* garbage_rng) {
  CycleOutcome outcome;
  encode();
  enter_sleep(garbage_rng);
  corrupt(upsets);
  wake();
  outcome.errors_detected = decode();
  outcome.decode_passes = 1;
  if (!outcome.errors_detected) {
    fsm_.on_event(PgEvent::SequenceDone);  // clean decode -> Active
    outcome.recheck_clean = true;
    outcome.final_state = fsm_.state();
    return outcome;
  }
  fsm_.on_event(PgEvent::ErrorsDetected);  // Decoding -> Correcting
  const bool can_correct = design_->config().kind != CodeKind::CrcDetect;
  if (can_correct) {
    // Re-check pass: the first decode already spliced corrections into the
    // stream; a clean second pass proves the state was repaired.
    const bool still_dirty = decode();
    ++outcome.decode_passes;
    outcome.recheck_clean = !still_dirty;
    fsm_.on_event(still_dirty ? PgEvent::Uncorrectable : PgEvent::Corrected);
  } else {
    fsm_.on_event(PgEvent::Uncorrectable);
  }
  outcome.final_state = fsm_.state();
  return outcome;
}

ActivityReport RetentionSession::measure_encode(const TechLibrary& tech) {
  sim_.reset_activity();
  encode();
  return sim_.activity(tech);
}

ActivityReport RetentionSession::measure_decode(const TechLibrary& tech) {
  sim_.reset_activity();
  const bool had_errors = decode();
  (void)had_errors;
  return sim_.activity(tech);
}

PackedRetentionSession::PackedRetentionSession(const ProtectedDesign& design)
    : design_(&design), sim_(design.netlist()) {
  RETSCAN_CHECK(!design.config().hardware_controller,
                "PackedRetentionSession: design has a hardware controller; use "
                "HardwareRetentionSession");
  set_controls(false, false, false, false);
  sim_.set_input_all(design_->controls().mon_clear, false);
  sim_.set_input_all(design_->controls().sig_capture, false);
  sim_.set_input_all(design_->controls().sig_compare, false);
  sim_.set_input_all(design_->chains().retain, false);
  sim_.eval();
}

void PackedRetentionSession::set_controls(bool se, bool mon_en, bool mon_decode,
                                          bool test_mode) {
  seq_set_controls(*design_, [this](NetId n, bool v) { sim_.set_input_all(n, v); },
                   se, mon_en, mon_decode, test_mode);
}

void PackedRetentionSession::encode() {
  seq_monitor_pass(sim_, *design_, [this](NetId n, bool v) { sim_.set_input_all(n, v); },
                   /*decode=*/false);
}

void PackedRetentionSession::enter_sleep(Rng* garbage_rng) {
  set_controls(false, false, false, false);
  sim_.set_input_all(design_->chains().retain, true);
  sim_.step();  // save edge: balloon latches sample the masters
  sim_.power_off(design_->config().gated_domain, garbage_rng);
}

void PackedRetentionSession::corrupt(
    const std::vector<std::vector<ErrorLocation>>& per_lane) {
  RETSCAN_CHECK(!sim_.domain_powered(design_->config().gated_domain),
                "PackedRetentionSession::corrupt: domain must be asleep");
  ErrorInjector::flip_retention(sim_, design_->chains(), per_lane);
}

void PackedRetentionSession::wake() {
  sim_.power_on(design_->config().gated_domain);
  sim_.set_input_all(design_->chains().retain, false);
  sim_.step();  // restore edge: masters reload from the balloon latches
}

LaneWord PackedRetentionSession::decode() {
  seq_monitor_pass(sim_, *design_, [this](NetId n, bool v) { sim_.set_input_all(n, v); },
                   /*decode=*/true);
  return error_flags();
}

LaneWord PackedRetentionSession::error_flags() const {
  return sim_.net_lanes(design_->error_flag_net_);
}

PackedRetentionSession::CycleOutcome PackedRetentionSession::sleep_wake_cycle(
    const std::vector<std::vector<ErrorLocation>>& per_lane, Rng* garbage_rng) {
  CycleOutcome outcome;
  encode();
  enter_sleep(garbage_rng);
  corrupt(per_lane);
  wake();
  outcome.errors_detected = decode();
  outcome.decode_passes = 1;
  const bool can_correct = design_->config().kind != CodeKind::CrcDetect;
  if (can_correct && outcome.errors_detected != 0) {
    // Re-check pass for every lane: the first decode already spliced
    // corrections into the stream, and a second pass over an already-clean
    // lane is clean by construction, so lanes that detected nothing are
    // unaffected while dirty lanes prove (or disprove) their repair.
    const LaneWord still_dirty = decode();
    ++outcome.decode_passes;
    outcome.recheck_clean = ~still_dirty;
  } else {
    // No repair happened: clean lanes pass, detected lanes stay dirty.
    outcome.recheck_clean = ~outcome.errors_detected;
  }
  return outcome;
}

HardwareRetentionSession::HardwareRetentionSession(const ProtectedDesign& design,
                                                   std::uint64_t garbage_seed)
    : design_(&design), sim_(design.netlist()), garbage_rng_(garbage_seed) {
  RETSCAN_CHECK(design.config().hardware_controller,
                "HardwareRetentionSession: design lacks a hardware controller");
  sim_.set_input(design_->sleep_net_, false);
  sim_.set_input(design_->netlist().find_net("test_mode"), false);
  sim_.eval();
}

void HardwareRetentionSession::set_sleep(bool value) {
  sim_.set_input(design_->sleep_net_, value);
}

void HardwareRetentionSession::step(std::size_t count) {
  const DomainId domain = design_->config().gated_domain;
  for (std::size_t i = 0; i < count; ++i) {
    sim_.step();
    // Power-switch fabric follower: the controller's pswitch_en output is
    // the gate of the header switches.
    const bool enable = sim_.net_value(design_->pswitch_en_net_);
    if (!enable && sim_.domain_powered(domain)) {
      sim_.power_off(domain, &garbage_rng_);
    } else if (enable && !sim_.domain_powered(domain)) {
      sim_.power_on(domain);
    }
  }
}

void HardwareRetentionSession::corrupt(const std::vector<ErrorLocation>& upsets) {
  RETSCAN_CHECK(asleep(), "HardwareRetentionSession::corrupt: domain must be asleep");
  ErrorInjector::flip_retention(sim_, design_->chains(), upsets);
}

HardwareRetentionSession::CycleOutcome HardwareRetentionSession::run_sleep_wake(
    const std::vector<ErrorLocation>& upsets, std::size_t max_cycles) {
  CycleOutcome outcome;
  set_sleep(true);
  while (!asleep() && outcome.cycles < max_cycles) {
    step();
    ++outcome.cycles;
  }
  if (!asleep()) {
    return outcome;  // never went down: report incomplete
  }
  corrupt(upsets);
  set_sleep(false);
  while (!active() && !error() && outcome.cycles < max_cycles) {
    step();
    ++outcome.cycles;
  }
  outcome.completed = active();
  outcome.error = error();
  return outcome;
}

}  // namespace retscan
