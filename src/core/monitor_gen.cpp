#include "core/monitor_gen.hpp"

#include <string>

#include "util/error.hpp"

namespace retscan {

namespace {

/// An l-deep, width-wide always-on shift memory with write/recirculate
/// muxing: tail <= (recirculate ? head : fresh) when enabled, every other
/// stage shifts toward the head. Returns the head nets (oldest entry).
struct ShiftMemory {
  std::vector<NetId> head;
};

ShiftMemory build_shift_memory(Netlist& nl, std::size_t depth, std::size_t width,
                               const std::vector<NetId>& fresh, NetId recirculate,
                               NetId enable) {
  RETSCAN_CHECK(fresh.size() == width, "build_shift_memory: width mismatch");
  ShiftMemory mem;
  mem.head.resize(width);
  for (std::size_t b = 0; b < width; ++b) {
    // Create the stage flops first so stage i can read stage i+1's output.
    std::vector<CellId> stages(depth);
    std::vector<NetId> q(depth);
    for (std::size_t i = 0; i < depth; ++i) {
      const NetId dummy = nl.add_net();
      stages[i] = nl.add_cell(CellType::Dff, {dummy});
      q[i] = nl.output_of(stages[i]);
    }
    for (std::size_t i = 0; i < depth; ++i) {
      const NetId shifted_in =
          (i + 1 < depth) ? q[i + 1] : nl.n_mux(recirculate, fresh[b], q[0]);
      nl.rewire_fanin(stages[i], 0, nl.n_mux(enable, q[i], shifted_in));
    }
    mem.head[b] = q[0];
  }
  return mem;
}

/// Sticky error flag: q <= clear ? 0 : (q | set).
NetId build_sticky_flag(Netlist& nl, NetId set, NetId clear) {
  const NetId dummy = nl.add_net();
  const CellId flag = nl.add_cell(CellType::Dff, {dummy}, "mon_err_ff");
  const NetId q = nl.output_of(flag);
  nl.rewire_fanin(flag, 0, nl.n_and(nl.n_not(clear), nl.n_or(q, set)));
  return q;
}

}  // namespace

MonitorBuildResult build_hamming_monitors(Netlist& nl, const ScanChains& chains,
                                          const HammingCode& code,
                                          const MonitorControls& controls,
                                          bool extended) {
  const std::size_t w = chains.chain_count();
  const std::size_t l = chains.length();
  const std::size_t k = code.k();
  const std::size_t r = code.r();
  RETSCAN_CHECK(w % k == 0, "build_hamming_monitors: chain count must be a multiple of k");
  const std::size_t groups = w / k;
  const std::size_t mem_width = r + (extended ? 1 : 0);

  MonitorBuildResult result;
  result.first_monitor_cell = static_cast<CellId>(nl.cell_count());
  result.feedback.resize(w);

  std::vector<NetId> group_errors;
  group_errors.reserve(groups);
  const NetId decoding = nl.n_and(controls.mon_en, controls.mon_decode);

  for (std::size_t g = 0; g < groups; ++g) {
    // Parity generator: r XOR trees over the group's scan-out bits, plus
    // one overall-parity tree for SEC-DED.
    std::vector<NetId> parity(mem_width);
    for (std::size_t b = 0; b < r; ++b) {
      std::vector<NetId> terms;
      for (std::size_t j = 0; j < k; ++j) {
        if ((code.data_position(j) >> b) & 1u) {
          terms.push_back(chains.so[g * k + j]);
        }
      }
      parity[b] = nl.n_xor_tree(terms);
    }
    if (extended) {
      std::vector<NetId> all(chains.so.begin() + g * k, chains.so.begin() + (g + 1) * k);
      parity[r] = nl.n_xor_tree(all);
    }

    // Always-on parity memory: stores during encode, recirculates during
    // decode so repeated decode passes see the same parity stream.
    const ShiftMemory mem = build_shift_memory(nl, l, mem_width, parity,
                                               controls.mon_decode, controls.mon_en);

    // Syndrome = recomputed parity vs stored parity.
    std::vector<NetId> syndrome(r), syndrome_n(r);
    for (std::size_t b = 0; b < r; ++b) {
      syndrome[b] = nl.n_xor(parity[b], mem.head[b]);
      syndrome_n[b] = nl.n_not(syndrome[b]);
    }
    NetId any_syndrome = nl.n_or_tree(syndrome);
    // SEC-DED: correct only when the overall parity also mismatches
    // (odd-weight error); a nonzero syndrome with even overall parity is a
    // flagged double error.
    NetId correct_enable = decoding;
    if (extended) {
      const NetId overall_mismatch = nl.n_xor(parity[r], mem.head[r]);
      correct_enable = nl.n_and(decoding, overall_mismatch);
      any_syndrome = nl.n_or(any_syndrome, overall_mismatch);
    }
    group_errors.push_back(nl.n_and(any_syndrome, decoding));

    // Syndrome decoder + corrector: flip the named data bit on its way back
    // into the scan-in stream.
    for (std::size_t j = 0; j < k; ++j) {
      const unsigned position = code.data_position(j);
      std::vector<NetId> literals;
      literals.reserve(r);
      for (std::size_t b = 0; b < r; ++b) {
        literals.push_back(((position >> b) & 1u) ? syndrome[b] : syndrome_n[b]);
      }
      const NetId match = nl.n_and(nl.n_and_tree(literals), correct_enable);
      result.feedback[g * k + j] = nl.n_xor(chains.so[g * k + j], match);
    }
  }

  const NetId any_error = nl.n_or_tree(group_errors);
  result.error_flag = build_sticky_flag(nl, any_error, controls.mon_clear);
  return result;
}

MonitorBuildResult build_crc_monitors(Netlist& nl, const ScanChains& chains,
                                      const Crc16& crc, std::size_t group_width,
                                      const MonitorControls& controls) {
  const std::size_t w = chains.chain_count();
  RETSCAN_CHECK(group_width >= 1 && w % group_width == 0,
                "build_crc_monitors: chain count must be a multiple of group width");
  const std::size_t groups = w / group_width;

  MonitorBuildResult result;
  result.first_monitor_cell = static_cast<CellId>(nl.cell_count());
  // Detection only: the feedback stream is the raw scan-out.
  result.feedback = chains.so;

  // Symbolic derivation of the parallel next-state: each of the 16 next
  // bits is an XOR over {state bits, the group_width input bits}. Symbols:
  // bit i (< 16) = state bit i, bit 16+j = input bit j.
  std::vector<std::uint32_t> state_mask(16);
  for (unsigned i = 0; i < 16; ++i) {
    state_mask[i] = 1u << i;
  }
  for (std::size_t j = 0; j < group_width; ++j) {
    const std::uint32_t feedback_mask = state_mask[15] ^ (1u << (16 + j));
    std::vector<std::uint32_t> next(16);
    for (unsigned i = 15; i >= 1; --i) {
      next[i] = state_mask[i - 1];
      if ((crc.polynomial() >> i) & 1u) {
        next[i] ^= feedback_mask;
      }
    }
    next[0] = ((crc.polynomial() >> 0) & 1u) ? feedback_mask : 0u;
    state_mask = std::move(next);
  }

  std::vector<NetId> group_mismatches;
  group_mismatches.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    // CRC state register.
    std::vector<CellId> crc_ff(16);
    std::vector<NetId> crc_q(16);
    for (unsigned i = 0; i < 16; ++i) {
      const NetId dummy = nl.add_net();
      crc_ff[i] = nl.add_cell(CellType::Dff, {dummy},
                              "crc" + std::to_string(g) + "_" + std::to_string(i));
      crc_q[i] = nl.output_of(crc_ff[i]);
    }
    // Parallel next-state XOR networks.
    for (unsigned i = 0; i < 16; ++i) {
      std::vector<NetId> terms;
      for (unsigned s = 0; s < 16; ++s) {
        if ((state_mask[i] >> s) & 1u) {
          terms.push_back(crc_q[s]);
        }
      }
      for (std::size_t j = 0; j < group_width; ++j) {
        if ((state_mask[i] >> (16 + j)) & 1u) {
          terms.push_back(chains.so[g * group_width + j]);
        }
      }
      const NetId next = terms.empty() ? nl.n_const(false) : nl.n_xor_tree(terms);
      const NetId held = nl.n_mux(controls.mon_en, crc_q[i], next);
      nl.rewire_fanin(crc_ff[i], 0, nl.n_and(nl.n_not(controls.mon_clear), held));
    }

    // Signature register: captures the CRC at the end of the encode pass.
    std::vector<NetId> sig_q(16);
    for (unsigned i = 0; i < 16; ++i) {
      const NetId dummy = nl.add_net();
      const CellId sig = nl.add_cell(CellType::Dff, {dummy},
                                     "sig" + std::to_string(g) + "_" + std::to_string(i));
      sig_q[i] = nl.output_of(sig);
      nl.rewire_fanin(sig, 0, nl.n_mux(controls.sig_capture, sig_q[i], crc_q[i]));
    }

    // Mismatch = OR of bitwise XOR, gated by the compare strobe.
    std::vector<NetId> diff(16);
    for (unsigned i = 0; i < 16; ++i) {
      diff[i] = nl.n_xor(crc_q[i], sig_q[i]);
    }
    group_mismatches.push_back(nl.n_and(nl.n_or_tree(diff), controls.sig_compare));
  }

  const NetId any_mismatch = nl.n_or_tree(group_mismatches);
  result.error_flag = build_sticky_flag(nl, any_mismatch, controls.mon_clear);
  return result;
}

void wire_scan_inputs(Netlist& nl, const ScanChains& chains,
                      const std::vector<NetId>& feedback,
                      const TestModeConfig& test_config, NetId test_mode) {
  const std::size_t w = chains.chain_count();
  RETSCAN_CHECK(feedback.size() == w, "wire_scan_inputs: feedback width mismatch");

  // Test-mode source per chain: the external tsi port for the first chain
  // of each group, the previous chain's scan-out otherwise.
  std::vector<NetId> test_source(w, kNullNet);
  for (std::size_t g = 0; g < test_config.groups.size(); ++g) {
    const auto& group = test_config.groups[g];
    RETSCAN_CHECK(!group.empty(), "wire_scan_inputs: empty test group");
    test_source[group.front()] = nl.add_input("tsi" + std::to_string(g));
    for (std::size_t i = 1; i < group.size(); ++i) {
      test_source[group[i]] = chains.so[group[i - 1]];
    }
    nl.add_output("tso" + std::to_string(g), chains.so[group.back()]);
  }

  for (std::size_t c = 0; c < w; ++c) {
    RETSCAN_CHECK(test_source[c] != kNullNet, "wire_scan_inputs: chain missing test source");
    const NetId si = nl.n_mux(test_mode, feedback[c], test_source[c]);
    // SI is pin 1 of Sdff/Rdff.
    nl.rewire_fanin(chains.chains[c].front(), 1, si);
  }
}

}  // namespace retscan
