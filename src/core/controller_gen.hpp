#pragma once

#include <cstddef>

#include "core/monitor_gen.hpp"
#include "netlist/netlist.hpp"

namespace retscan {

/// Parameters of the generated power-gating controller (the "proposed
/// power gating controller template" input of the Fig. 4 flow; its control
/// sequence is Fig. 3(b)).
struct PgControllerSpec {
  std::size_t chain_length = 0;   ///< l: cycles per encode/decode pass
  std::size_t settle_cycles = 4;  ///< wake-up wait for the rail to settle
  bool has_crc = true;            ///< emit sig_capture/sig_compare strobes
  bool can_correct = true;        ///< Hamming present: run a recheck pass
};

/// Nets produced by the controller for the surrounding system.
struct PgControllerPorts {
  NetId sleep = kNullNet;       ///< input: sleep request (level)
  NetId pswitch_en = kNullNet;  ///< output: header-switch enable
  NetId ctrl_active = kNullNet; ///< output: controller in Active state
  NetId ctrl_error = kNullNet;  ///< output: latched uncorrectable-error state
};

/// Generate the gate-level Fig. 3(b) controller as a one-hot FSM in the
/// always-on domain and bind its outputs onto pre-created control nets
/// (se/retain and the MonitorControls), which the monitors and scan flops
/// already read. The Active state is implicit (all one-hot flops zero), so
/// the simulator's all-zero reset starts the controller in Active.
///
/// Sequence: Active -> clear -> encode (l cycles) -> [capture] -> save ->
/// sleep -> wake (settle) -> restore -> clear -> decode (l cycles) ->
/// [compare] -> check -> {Active | recheck decode | Error}.
///
/// `se_net`/`retain_net` and the nets inside `controls` must be existing
/// undriven nets; the controller claims them via bound buffer cells.
PgControllerPorts build_pg_controller(Netlist& netlist, const PgControllerSpec& spec,
                                      NetId error_flag, NetId se_net, NetId retain_net,
                                      const MonitorControls& controls);

}  // namespace retscan
