#pragma once

#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "core/protected_design.hpp"
#include "netlist/techlib.hpp"

namespace retscan {

/// One characterized configuration — a row of the paper's Tables I-III.
struct CostRow {
  std::string code_name;
  std::size_t chain_count = 0;   ///< W
  std::size_t chain_length = 0;  ///< l
  double base_area_um2 = 0.0;    ///< unprotected design + scan
  double total_area_um2 = 0.0;   ///< base + monitoring logic
  double overhead_percent = 0.0;
  double enc_power_mw = 0.0;
  double dec_power_mw = 0.0;
  double latency_ns = 0.0;       ///< coding time l * T (Section III)
  double enc_energy_nj = 0.0;
  double dec_energy_nj = 0.0;
  /// Hamming correction strength (n-k)/k in percent (Table III "cap");
  /// zero for detection-only codes.
  double capability_percent = 0.0;
};

/// Quality constraints from the synthesis flow's configuration file
/// (Fig. 4 input). Unset limits default to infinity.
struct QualityConstraints {
  double max_area_overhead_percent = std::numeric_limits<double>::infinity();
  double max_latency_ns = std::numeric_limits<double>::infinity();
  double max_energy_nj = std::numeric_limits<double>::infinity();
  double min_capability_percent = 0.0;
};

/// The reliability-aware synthesizer (Fig. 4). Inputs: a conventional
/// power-gated design (as a netlist factory, so sweeps can rebuild it), the
/// configuration file (quality constraints), and the monitoring templates
/// (ProtectionConfig). It inserts scan chains, generates the monitoring and
/// correction logic, configures the proposed power-gating controller, and
/// characterizes the result against the technology library.
class ReliabilitySynthesizer {
 public:
  using NetlistFactory = std::function<Netlist()>;

  ReliabilitySynthesizer(NetlistFactory factory, TechLibrary tech,
                         double clock_period_ns = 10.0);

  /// Build + measure one configuration (one table row). Runs the actual
  /// encode and decode sequences on the synthesized design with a random
  /// resident state and derives power from counted toggles.
  CostRow characterize(const ProtectionConfig& config, std::uint64_t seed = 1) const;

  /// Sweep a list of configurations (e.g. Table I's W in {4,8,16,40,80}).
  std::vector<CostRow> sweep(const std::vector<ProtectionConfig>& configs) const;

  /// Indices of rows on the (overhead, dec_energy) Pareto front.
  static std::vector<std::size_t> pareto_front(const std::vector<CostRow>& rows);

  /// The quality solution of Fig. 4: the feasible row with the smallest
  /// decode energy; throws if no row satisfies the constraints.
  static const CostRow& pick(const std::vector<CostRow>& rows,
                             const QualityConstraints& constraints);

  double clock_period_ns() const { return clock_period_ns_; }

 private:
  NetlistFactory factory_;
  TechLibrary tech_;
  double clock_period_ns_;
};

/// Render rows in the layout of the paper's tables.
void print_cost_table(std::ostream& os, const std::string& title,
                      const std::vector<CostRow>& rows);

}  // namespace retscan
