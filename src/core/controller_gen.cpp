#include "core/controller_gen.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace retscan {

namespace {

/// One-hot state indices; Active is implicit (all flops zero).
enum State : std::size_t {
  kClrE = 0,
  kEnc,
  kCapture,
  kSave,
  kSleep,
  kWake,
  kRestore,
  kClrD,
  kDec,
  kCompare,
  kCheck,
  kError,
  kStateCount,
};

std::size_t bits_for_count(std::size_t count) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < count) {
    ++bits;
  }
  return bits;
}

NetId equals_const(Netlist& nl, const std::vector<NetId>& x, std::size_t value) {
  std::vector<NetId> terms;
  terms.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    terms.push_back(((value >> i) & 1u) ? x[i] : nl.n_not(x[i]));
  }
  return nl.n_and_tree(terms);
}

}  // namespace

PgControllerPorts build_pg_controller(Netlist& nl, const PgControllerSpec& spec,
                                      NetId error_flag, NetId se_net, NetId retain_net,
                                      const MonitorControls& controls) {
  RETSCAN_CHECK(spec.chain_length >= 1, "build_pg_controller: chain_length >= 1");
  RETSCAN_CHECK(spec.settle_cycles >= 1, "build_pg_controller: settle_cycles >= 1");

  PgControllerPorts ports;
  ports.sleep = nl.add_input("sleep");

  // --- state register (one-hot, Active implicit) ------------------------
  std::vector<CellId> state_ff(kStateCount);
  std::vector<NetId> s(kStateCount);
  for (std::size_t i = 0; i < kStateCount; ++i) {
    const NetId dummy = nl.add_net();
    state_ff[i] = nl.add_cell(CellType::Dff, {dummy}, "pgc_s" + std::to_string(i));
    s[i] = nl.output_of(state_ff[i]);
  }
  const NetId active = nl.n_not(nl.n_or_tree(s));

  // --- pass/settle counter ----------------------------------------------
  const std::size_t span = std::max(spec.chain_length, spec.settle_cycles);
  const std::size_t cbits = bits_for_count(span + 1);
  std::vector<CellId> cnt_ff(cbits);
  std::vector<NetId> cnt(cbits);
  for (std::size_t i = 0; i < cbits; ++i) {
    const NetId dummy = nl.add_net();
    cnt_ff[i] = nl.add_cell(CellType::Dff, {dummy}, "pgc_cnt" + std::to_string(i));
    cnt[i] = nl.output_of(cnt_ff[i]);
  }
  const NetId counting = nl.n_or(nl.n_or(s[kEnc], s[kDec]), s[kWake]);
  {
    NetId carry = nl.n_const(true);
    for (std::size_t i = 0; i < cbits; ++i) {
      const NetId incremented = nl.n_xor(cnt[i], carry);
      if (i + 1 < cbits) {
        carry = nl.n_and(cnt[i], carry);
      }
      // Hold-at-zero when not counting.
      nl.rewire_fanin(cnt_ff[i], 0, nl.n_and(counting, incremented));
    }
  }
  const NetId pass_done = equals_const(nl, cnt, spec.chain_length - 1);
  const NetId settle_done = equals_const(nl, cnt, spec.settle_cycles - 1);

  // --- recheck flag (second decode pass after a correction) --------------
  const NetId recheck_dummy = nl.add_net();
  const CellId recheck_ff = nl.add_cell(CellType::Dff, {recheck_dummy}, "pgc_recheck");
  const NetId recheck = nl.output_of(recheck_ff);

  const NetId err = error_flag;
  const NetId check_err = nl.n_and(s[kCheck], err);
  const NetId check_clean = nl.n_and(s[kCheck], nl.n_not(err));
  const NetId recheck_set =
      spec.can_correct ? nl.n_and(check_err, nl.n_not(recheck)) : nl.n_const(false);
  const NetId to_error =
      spec.can_correct ? nl.n_and(check_err, recheck) : check_err;
  // Hold through the correction pass; clear when returning to Active or
  // latching the error state.
  nl.rewire_fanin(recheck_ff, 0,
                  nl.n_and(nl.n_or(recheck_set, recheck),
                           nl.n_not(nl.n_or(check_clean, to_error))));

  // --- transition network -------------------------------------------------
  std::vector<NetId> next(kStateCount);
  next[kClrE] = nl.n_and(active, ports.sleep);
  next[kEnc] = nl.n_or(s[kClrE], nl.n_and(s[kEnc], nl.n_not(pass_done)));
  const NetId enc_done = nl.n_and(s[kEnc], pass_done);
  if (spec.has_crc) {
    next[kCapture] = enc_done;
    next[kSave] = s[kCapture];
  } else {
    next[kCapture] = nl.n_const(false);
    next[kSave] = enc_done;
  }
  next[kSleep] = nl.n_or(s[kSave], nl.n_and(s[kSleep], ports.sleep));
  next[kWake] = nl.n_or(nl.n_and(s[kSleep], nl.n_not(ports.sleep)),
                        nl.n_and(s[kWake], nl.n_not(settle_done)));
  next[kRestore] = nl.n_and(s[kWake], settle_done);
  next[kClrD] = nl.n_or(s[kRestore], recheck_set);
  next[kDec] = nl.n_or(s[kClrD], nl.n_and(s[kDec], nl.n_not(pass_done)));
  const NetId dec_done = nl.n_and(s[kDec], pass_done);
  if (spec.has_crc) {
    next[kCompare] = dec_done;
    next[kCheck] = s[kCompare];
  } else {
    next[kCompare] = nl.n_const(false);
    next[kCheck] = dec_done;
  }
  next[kError] = nl.n_or(to_error, s[kError]);
  for (std::size_t i = 0; i < kStateCount; ++i) {
    nl.rewire_fanin(state_ff[i], 0, next[i]);
  }

  // --- output decode, bound onto the pre-created control nets ------------
  auto bind = [&nl](NetId value, NetId target) {
    nl.add_cell_bound(CellType::Buf, {value}, target);
  };
  const NetId shifting = nl.n_or(s[kEnc], s[kDec]);
  bind(shifting, se_net);
  bind(shifting, controls.mon_en);
  bind(s[kDec], controls.mon_decode);
  bind(nl.n_or(s[kClrE], s[kClrD]), controls.mon_clear);
  bind(spec.has_crc ? s[kCapture] : nl.n_const(false), controls.sig_capture);
  bind(spec.has_crc ? s[kCompare] : nl.n_const(false), controls.sig_compare);
  bind(nl.n_or(nl.n_or(s[kSave], s[kSleep]), s[kWake]), retain_net);

  ports.pswitch_en = nl.n_not(s[kSleep]);
  ports.ctrl_active = active;
  ports.ctrl_error = s[kError];
  nl.add_output("pswitch_en", ports.pswitch_en);
  nl.add_output("ctrl_active", ports.ctrl_active);
  nl.add_output("ctrl_error", ports.ctrl_error);
  return ports;
}

}  // namespace retscan
