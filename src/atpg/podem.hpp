#pragma once

#include <cstddef>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace retscan {

/// Outcome of one PODEM run for a single fault.
struct PodemResult {
  bool success = false;
  /// Exhausted the decision space: the fault is provably untestable in the
  /// combinational frame (redundant logic).
  bool untestable = false;
  /// Exceeded the backtrack budget (status unknown).
  bool aborted = false;
  BitVec pattern;  ///< valid when success
  std::size_t backtracks = 0;
};

/// Path-Oriented DEcision Making test generator over the combinational
/// frame. Uses the classic dual-machine three-valued formulation: the good
/// and faulty circuits are simulated in {0,1,X}; a D (good=1/faulty=0) or
/// D' at any primary or pseudo-primary output means the pattern detects the
/// fault. Decisions are made only at (pseudo-)primary inputs, with
/// objective/backtrace steering and chronological backtracking.
class Podem {
 public:
  Podem(const CombinationalFrame& frame, std::size_t max_backtracks = 500);

  PodemResult generate(const Fault& fault, Rng& rng);

 private:
  static constexpr std::uint8_t kX = 2;

  struct Objective {
    bool valid = false;
    NetId net = kNullNet;
    bool value = false;
  };

  void imply(const Fault& fault);
  bool detected() const;
  bool activation_impossible(const Fault& fault) const;
  bool propagation_impossible(const Fault& fault) const;
  Objective pick_objective(const Fault& fault) const;
  /// Walk an objective back to an unassigned (pseudo-)input; returns the
  /// input *index* into the pattern and the value to assign.
  std::pair<std::size_t, bool> backtrace(const Objective& objective) const;

  const CombinationalFrame* frame_;
  std::size_t max_backtracks_;
  std::vector<std::uint8_t> good_;
  std::vector<std::uint8_t> faulty_;
  std::vector<std::uint8_t> input_values_;   // per pattern index: 0/1/X
  std::vector<NetId> input_nets_;            // pattern index -> net
  std::vector<std::size_t> input_of_net_;    // net -> pattern index or npos
};

}  // namespace retscan
