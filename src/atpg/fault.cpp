#include "atpg/fault.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace retscan {

std::string fault_name(const Netlist& netlist, const Fault& fault) {
  const std::string& name = netlist.net_name(fault.net);
  const std::string base = name.empty() ? "n" + std::to_string(fault.net) : name;
  return base + (fault.stuck_at ? "/SA1" : "/SA0");
}

std::vector<Fault> enumerate_faults(const Netlist& netlist) {
  std::vector<Fault> faults;
  const auto& fanouts = netlist.fanouts();
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    if (netlist.driver(net) == kNullCell || fanouts[net].empty()) {
      continue;
    }
    faults.push_back(Fault{net, false});
    faults.push_back(Fault{net, true});
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& netlist, const std::vector<Fault>& faults) {
  // Map each fault to its representative by walking backward through
  // Buf/Not drivers until a multi-input gate, flop, or input is reached.
  auto representative = [&netlist](Fault fault) {
    for (;;) {
      const CellId drv = netlist.driver(fault.net);
      if (drv == kNullCell) {
        return fault;
      }
      const Cell& cell = netlist.cell(drv);
      if (cell.type == CellType::Buf) {
        fault.net = cell.fanin[0];
      } else if (cell.type == CellType::Not) {
        fault.net = cell.fanin[0];
        fault.stuck_at = !fault.stuck_at;
      } else {
        return fault;
      }
    }
  };

  std::vector<Fault> collapsed;
  collapsed.reserve(faults.size());
  std::unordered_map<std::uint64_t, bool> seen;
  for (const Fault& fault : faults) {
    const Fault rep = representative(fault);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rep.net) << 1) | (rep.stuck_at ? 1u : 0u);
    if (!seen.emplace(key, true).second) {
      continue;
    }
    collapsed.push_back(rep);
  }
  return collapsed;
}

}  // namespace retscan
