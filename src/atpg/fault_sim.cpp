#include "atpg/fault_sim.hpp"

#include <atomic>
#include <bit>
#include <limits>

#include "sim/eval_kernel.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {

inline constexpr std::uint32_t kNoObs = ~std::uint32_t{0};

/// Batch identity for Workspace sync tracking: unique per load_batch, never
/// reused, so a stale workspace can never masquerade as settled.
std::uint64_t next_batch_tag() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

CombinationalFrame::CombinationalFrame(const Netlist& netlist)
    : netlist_(&netlist), compiled_(netlist.compiled()) {
  for (const CellId input : netlist.inputs()) {
    pi_nets_.push_back(netlist.cell(input).out);
  }
  flops_ = netlist.flops();
  for (const CellId output : netlist.outputs()) {
    po_nets_.push_back(netlist.cell(output).fanin[0]);
  }
  // Constant cells are sources (not in the instruction stream) and must be
  // initialized explicitly on every load.
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    if (netlist.cell(id).type == CellType::Const1) {
      const1_nets_.push_back(netlist.cell(id).out);
      const1_slots_.push_back(compiled_->slot(netlist.cell(id).out));
    }
  }
  for (const NetId net : pi_nets_) {
    pi_slots_.push_back(compiled_->slot(net));
  }
  for (const CellId flop : flops_) {
    ppi_slots_.push_back(compiled_->slot(netlist.cell(flop).out));
  }
  // Observation points: POs first, then flop D captures (functional path,
  // se = 0) — the good_words layout.
  for (const NetId po : po_nets_) {
    obs_slots_.push_back(compiled_->slot(po));
  }
  for (const CellId flop : flops_) {
    obs_slots_.push_back(compiled_->slot(netlist.cell(flop).fanin[0]));
  }
  obs_word_of_slot_.assign(compiled_->slot_count(), kNoObs);
  for (std::uint32_t word = 0; word < obs_slots_.size(); ++word) {
    // Duplicate observables on one net carry identical good words, so
    // keeping the first mapping preserves the detect mask.
    if (obs_word_of_slot_[obs_slots_[word]] == kNoObs) {
      obs_word_of_slot_[obs_slots_[word]] = word;
    }
  }
}

void CombinationalFrame::constrain(const std::string& input_name, bool value) {
  const NetId net = netlist_->find_net(input_name);
  for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
    if (pi_nets_[i] == net) {
      constraints_.emplace_back(i, value);
      return;
    }
  }
  RETSCAN_CHECK(false, "CombinationalFrame::constrain: not a primary input: " + input_name);
}

BitVec CombinationalFrame::random_pattern(Rng& rng) const {
  BitVec pattern = rng.next_bits(pattern_width());
  for (const auto& [index, value] : constraints_) {
    pattern.set(index, value);
  }
  return pattern;
}

void CombinationalFrame::load(std::vector<LaneBlock>& slot_values,
                              const std::vector<BitVec>& patterns) const {
  RETSCAN_CHECK(patterns.size() <= kLaneBlockBits,
                "CombinationalFrame: batch larger than kLaneBlockBits");
  std::fill(slot_values.begin(), slot_values.end(), LaneBlock{});
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    RETSCAN_CHECK(patterns[p].size() == pattern_width(),
                  "CombinationalFrame: pattern width mismatch");
    const std::size_t word = p / kLaneCount;
    const std::uint64_t bit = std::uint64_t{1} << (p % kLaneCount);
    for (std::size_t i = 0; i < pi_slots_.size(); ++i) {
      if (patterns[p].get(i)) {
        slot_values[pi_slots_[i]].w[word] |= bit;
      }
    }
    for (std::size_t i = 0; i < ppi_slots_.size(); ++i) {
      if (patterns[p].get(pi_slots_.size() + i)) {
        slot_values[ppi_slots_[i]].w[word] |= bit;
      }
    }
  }
  for (const auto& [index, value] : constraints_) {
    slot_values[pi_slots_[index]] = block_broadcast(value);
  }
  for (const std::uint32_t slot : const1_slots_) {
    slot_values[slot] = block_broadcast(true);
  }
}

CombinationalFrame::LoadedPatternBatch CombinationalFrame::load_batch(
    const std::vector<BitVec>& patterns) const {
  LoadedPatternBatch batch;
  batch.settled.resize(compiled_->slot_count());
  batch.count = patterns.size();
  batch.tag = next_batch_tag();
  load(batch.settled, patterns);
  compiled_->eval_full(batch.settled.data());
  batch.good.reserve(obs_slots_.size());
  for (const std::uint32_t slot : obs_slots_) {
    batch.good.push_back(batch.settled[slot]);
  }
  return batch;
}

BitVec CombinationalFrame::good_response(const BitVec& pattern) const {
  return unpack_lanes(good_response_words({pattern}), 1)[0];
}

std::vector<std::uint64_t> CombinationalFrame::good_response_words(
    const std::vector<BitVec>& patterns) const {
  RETSCAN_CHECK(patterns.size() <= kLaneCount,
                "CombinationalFrame::good_response_words: more than 64 patterns");
  const LoadedPatternBatch batch = load_batch(patterns);
  std::vector<std::uint64_t> words;
  words.reserve(batch.good.size());
  for (const LaneBlock& block : batch.good) {
    words.push_back(block.w[0]);
  }
  return words;
}

const CombinationalFrame::FaultCone& CombinationalFrame::fault_cone(NetId net) const {
  const std::lock_guard<std::mutex> lock(cone_mutex_);
  auto it = cones_.find(net);
  if (it == cones_.end()) {
    auto fault_cone = std::make_unique<FaultCone>();
    fault_cone->cone = compiled_->build_cone(net);
    for (const std::uint32_t slot : fault_cone->cone.touched_slots) {
      const std::uint32_t word = obs_word_of_slot_[slot];
      if (word != kNoObs) {
        fault_cone->observables.emplace_back(word, slot);
      }
    }
    it = cones_.emplace(net, std::move(fault_cone)).first;
  }
  return *it->second;
}

CombinationalFrame::FaultCone CombinationalFrame::dirty_cone(
    const std::vector<NetId>& sources) const {
  FaultCone fc;
  fc.cone = compiled_->build_cone(sources);
  for (const std::uint32_t slot : fc.cone.touched_slots) {
    const std::uint32_t word = obs_word_of_slot_[slot];
    if (word != kNoObs) {
      fc.observables.emplace_back(word, slot);
    }
  }
  return fc;
}

void CombinationalFrame::warm_cones(const std::vector<Fault>& faults) const {
  for (const Fault& fault : faults) {
    (void)fault_cone(fault.net);
  }
}

LaneBlock CombinationalFrame::detect_block(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks) const {
  return detect_block(fault, batch, good_blocks, scratch_);
}

LaneBlock CombinationalFrame::detect_block(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks, Workspace& workspace) const {
  return detect_block(fault, fault_cone(fault.net), batch, good_blocks, workspace);
}

LaneBlock CombinationalFrame::detect_block(
    const Fault& fault, const FaultCone& fc, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks, Workspace& workspace) const {
  // Single-source specialization of the dirty-set replay; the forced value
  // lives on the stack so the per-fault hot loop stays allocation-free.
  const LaneBlock forced = block_broadcast(fault.stuck_at);
  return replay_span(fc, &forced, 1, batch, good_blocks, workspace);
}

LaneBlock CombinationalFrame::replay_dirty(
    const FaultCone& fc, const std::vector<LaneBlock>& forced,
    const LoadedPatternBatch& batch, const std::vector<LaneBlock>& good_blocks,
    Workspace& workspace) const {
  RETSCAN_CHECK(forced.size() == fc.cone.source_slots.size(),
                "CombinationalFrame::replay_dirty: one forced value per source");
  return replay_span(fc, forced.data(), forced.size(), batch, good_blocks, workspace);
}

LaneBlock CombinationalFrame::replay_span(
    const FaultCone& fc, const LaneBlock* forced, std::size_t forced_count,
    const LoadedPatternBatch& batch, const std::vector<LaneBlock>& good_blocks,
    Workspace& workspace) const {
  RETSCAN_CHECK(good_blocks.size() == response_width(),
                "CombinationalFrame::detect_block: good responses missing");
  // Sync the workspace to this batch's good machine once; every cone pass
  // below leaves it settled again, so consecutive faults pay no copy.
  if (workspace.synced_tag != batch.tag) {
    workspace.values = batch.settled;
    workspace.synced_tag = batch.tag;
  }
  LaneBlock* v = workspace.values.data();
  for (std::size_t s = 0; s < forced_count; ++s) {
    v[fc.cone.source_slots[s]] = forced[s];
  }
  const CompiledInstr* instrs = compiled_->instrs().data();
  for (const std::uint32_t i : fc.cone.instrs) {
    const CompiledInstr& in = instrs[i];
    v[in.out] = CompiledNetlist::eval_instr(in, v);
  }
  // Block-wide good/faulty XOR over the reachable observables only: lane p
  // of the result is set iff pattern p sees a difference somewhere.
  LaneBlock mask{};
  for (const auto& [word, slot] : fc.observables) {
    mask = mask | (v[slot] ^ good_blocks[word]);
  }
  // Undo: restore exactly the touched slots to the good-machine values.
  for (const std::uint32_t slot : fc.cone.touched_slots) {
    v[slot] = batch.settled[slot];
  }
  return mask & block_lane_mask(batch.count);
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks) const {
  return detect_mask(fault, batch, good_blocks, scratch_);
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks, Workspace& workspace) const {
  return detect_mask(fault, fault_cone(fault.net), batch, good_blocks, workspace);
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const FaultCone& fc, const LoadedPatternBatch& batch,
    const std::vector<LaneBlock>& good_blocks, Workspace& workspace) const {
  RETSCAN_CHECK(batch.count <= kLaneCount,
                "CombinationalFrame::detect_mask: batch wider than one word");
  return detect_block(fault, fc, batch, good_blocks, workspace).w[0];
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const std::vector<BitVec>& patterns,
    const std::vector<std::uint64_t>& good_words) const {
  RETSCAN_CHECK(patterns.size() <= kLaneCount,
                "CombinationalFrame::detect_mask: more than 64 patterns");
  // Widen the caller's good words (lanes 0..63) into blocks; lanes beyond
  // the batch count are silenced by the final block mask.
  std::vector<LaneBlock> good_blocks(good_words.size(), LaneBlock{});
  for (std::size_t i = 0; i < good_words.size(); ++i) {
    good_blocks[i].w[0] = good_words[i];
  }
  return detect_mask(fault, load_batch(patterns), good_blocks);
}

std::uint64_t CombinationalFrame::detect_mask(const Fault& fault,
                                              const std::vector<BitVec>& patterns,
                                              const std::vector<BitVec>& good) const {
  RETSCAN_CHECK(patterns.size() == good.size(),
                "CombinationalFrame::detect_mask: good responses missing");
  if (patterns.empty()) {
    return 0;
  }
  return detect_mask(fault, patterns, pack_lanes(good));
}

std::uint64_t CombinationalFrame::detect_mask_full(
    const Fault& fault, const std::vector<BitVec>& patterns,
    const std::vector<std::uint64_t>& good_words) const {
  RETSCAN_CHECK(good_words.size() == response_width(),
                "CombinationalFrame::detect_mask_full: good responses missing");
  RETSCAN_CHECK(patterns.size() <= 64, "CombinationalFrame: batch larger than 64");
  // NetId-indexed load, exactly the seed's layout.
  std::vector<std::uint64_t> values(netlist_->net_count(), 0);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    RETSCAN_CHECK(patterns[p].size() == pattern_width(),
                  "CombinationalFrame: pattern width mismatch");
    const std::uint64_t bit = std::uint64_t{1} << p;
    for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
      if (patterns[p].get(i)) {
        values[pi_nets_[i]] |= bit;
      }
    }
    for (std::size_t i = 0; i < flops_.size(); ++i) {
      if (patterns[p].get(pi_nets_.size() + i)) {
        values[netlist_->cell(flops_[i]).out] |= bit;
      }
    }
  }
  for (const auto& [index, value] : constraints_) {
    values[pi_nets_[index]] = value ? ~std::uint64_t{0} : 0;
  }
  for (const NetId net : const1_nets_) {
    values[net] = ~std::uint64_t{0};
  }
  // Full interpreted sweep with the fault forced at its site (PIs and flop
  // outputs may themselves be the fault site, and the forced value must
  // survive its driver's evaluation).
  const std::uint64_t fault_value = fault.stuck_at ? ~std::uint64_t{0} : 0;
  values[fault.net] = fault_value;
  for (const CellId id : netlist_->combinational_order()) {
    const Cell& c = netlist_->cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    values[c.out] = eval_comb_word(c, values);
    if (c.out == fault.net) {
      values[c.out] = fault_value;
    }
  }
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < po_nets_.size(); ++i) {
    mask |= values[po_nets_[i]] ^ good_words[i];
  }
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const NetId d = netlist_->cell(flops_[i]).fanin[0];
    mask |= values[d] ^ good_words[po_nets_.size() + i];
  }
  return mask & lane_mask(patterns.size());
}

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns) {
  constexpr std::size_t npos = FaultSimResult::npos;
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);

  // One load + settle per 64-pattern batch, then an incremental cone
  // evaluation per live fault. Cones are resolved once per fault so the
  // cache lock stays out of the batch loop.
  std::vector<const CombinationalFrame::FaultCone*> cones;
  cones.reserve(faults.size());
  for (const Fault& fault : faults) {
    cones.push_back(&frame.fault_cone(fault.net));
  }
  CombinationalFrame::Workspace workspace;
  for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const CombinationalFrame::LoadedPatternBatch loaded = frame.load_batch(batch);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected_by[fi] != npos) {
        continue;  // fault dropping
      }
      const LaneBlock mask =
          frame.detect_block(faults[fi], *cones[fi], loaded, loaded.good, workspace);
      if (block_any(mask)) {
        result.detected_by[fi] = base + block_first_lane(mask);
        ++result.detected;
      }
    }
  }
  return result;
}

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns,
                              ThreadPool& pool, std::size_t fault_shard) {
  constexpr std::size_t npos = FaultSimResult::npos;
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty()) {
    return result;
  }
  if (fault_shard == 0) {
    fault_shard = 1;
  }

  // Build every fault cone on this thread so workers only take cache hits.
  frame.warm_cones(faults);

  // Load and settle every block-wide batch once, up front, in parallel —
  // workers then share them read-only.
  struct Batch {
    std::size_t base = 0;
    CombinationalFrame::LoadedPatternBatch loaded;
  };
  std::vector<Batch> batches((patterns.size() + kLaneBlockBits - 1) / kLaneBlockBits);
  pool.parallel_for(batches.size(), [&](std::size_t b) {
    const std::size_t base = b * kLaneBlockBits;
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    const std::vector<BitVec> slice(patterns.begin() + base,
                                    patterns.begin() + base + count);
    batches[b].base = base;
    batches[b].loaded = frame.load_batch(slice);
  });

  // Shard the fault list. Each worker owns its shard's detected_by slots
  // (disjoint writes) and a private workspace, and walks its shard
  // batch-major — the workspace baseline is copied once per batch, and
  // every live fault is then an incremental cone pass. Dropping a fault at
  // its first detecting batch gives exactly the serial per-fault result.
  const std::size_t shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  std::vector<std::size_t> shard_detected(shard_count, 0);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * fault_shard;
    const std::size_t last = std::min(faults.size(), first + fault_shard);
    CombinationalFrame::Workspace workspace;
    // Resolve the shard's cones once (pure cache hits after warm_cones) so
    // the cone-cache lock never enters the batch loop.
    std::vector<std::size_t> live;
    std::vector<const CombinationalFrame::FaultCone*> cones(last - first, nullptr);
    live.reserve(last - first);
    for (std::size_t fi = first; fi < last; ++fi) {
      live.push_back(fi);
      cones[fi - first] = &frame.fault_cone(faults[fi].net);
    }
    for (const Batch& batch : batches) {
      if (live.empty()) {
        break;
      }
      std::size_t kept = 0;
      for (const std::size_t fi : live) {
        const LaneBlock mask = frame.detect_block(
            faults[fi], *cones[fi - first], batch.loaded, batch.loaded.good, workspace);
        if (block_any(mask)) {
          result.detected_by[fi] = batch.base + block_first_lane(mask);
          ++shard_detected[s];
        } else {
          live[kept++] = fi;
        }
      }
      live.resize(kept);
    }
  });
  for (const std::size_t count : shard_detected) {
    result.detected += count;
  }
  return result;
}

}  // namespace retscan
