#include "atpg/fault_sim.hpp"

#include <bit>
#include <limits>

#include "sim/eval_kernel.hpp"
#include "util/error.hpp"

namespace retscan {

CombinationalFrame::CombinationalFrame(const Netlist& netlist)
    : netlist_(&netlist), order_(netlist.combinational_order()) {
  for (const CellId input : netlist.inputs()) {
    pi_nets_.push_back(netlist.cell(input).out);
  }
  flops_ = netlist.flops();
  for (const CellId output : netlist.outputs()) {
    po_nets_.push_back(netlist.cell(output).fanin[0]);
  }
  // Constant cells are sources (not in combinational_order) and must be
  // initialized explicitly on every load.
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    if (netlist.cell(id).type == CellType::Const1) {
      const1_nets_.push_back(netlist.cell(id).out);
    }
  }
}

void CombinationalFrame::constrain(const std::string& input_name, bool value) {
  const NetId net = netlist_->find_net(input_name);
  for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
    if (pi_nets_[i] == net) {
      constraints_.emplace_back(i, value);
      return;
    }
  }
  RETSCAN_CHECK(false, "CombinationalFrame::constrain: not a primary input: " + input_name);
}

BitVec CombinationalFrame::random_pattern(Rng& rng) const {
  BitVec pattern = rng.next_bits(pattern_width());
  for (const auto& [index, value] : constraints_) {
    pattern.set(index, value);
  }
  return pattern;
}

void CombinationalFrame::load(std::vector<std::uint64_t>& values,
                              const std::vector<BitVec>& patterns) const {
  RETSCAN_CHECK(patterns.size() <= 64, "CombinationalFrame: batch larger than 64");
  std::fill(values.begin(), values.end(), 0);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    RETSCAN_CHECK(patterns[p].size() == pattern_width(),
                  "CombinationalFrame: pattern width mismatch");
    const std::uint64_t bit = std::uint64_t{1} << p;
    for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
      if (patterns[p].get(i)) {
        values[pi_nets_[i]] |= bit;
      }
    }
    for (std::size_t i = 0; i < flops_.size(); ++i) {
      if (patterns[p].get(pi_nets_.size() + i)) {
        values[netlist_->cell(flops_[i]).out] |= bit;
      }
    }
  }
  for (const auto& [index, value] : constraints_) {
    values[pi_nets_[index]] = value ? ~std::uint64_t{0} : 0;
  }
  for (const NetId net : const1_nets_) {
    values[net] = ~std::uint64_t{0};
  }
}

void CombinationalFrame::evaluate(std::vector<std::uint64_t>& values, NetId fault_net,
                                  std::uint64_t fault_value) const {
  // PIs and flop outputs may themselves be the fault site.
  if (fault_net != kNullNet) {
    values[fault_net] = fault_value;
  }
  for (const CellId id : order_) {
    const Cell& c = netlist_->cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    values[c.out] = eval_comb_word(c, values);
    if (c.out == fault_net) {
      values[c.out] = fault_value;
    }
  }
}

std::vector<std::uint64_t> CombinationalFrame::response_words(
    const std::vector<std::uint64_t>& values) const {
  std::vector<std::uint64_t> words;
  words.reserve(response_width());
  for (const NetId po : po_nets_) {
    words.push_back(values[po]);
  }
  for (const CellId flop : flops_) {
    // PPO = functional D pin (capture path, se = 0).
    words.push_back(values[netlist_->cell(flop).fanin[0]]);
  }
  return words;
}

CombinationalFrame::LoadedPatternBatch CombinationalFrame::load_batch(
    const std::vector<BitVec>& patterns) const {
  LoadedPatternBatch batch;
  batch.values.resize(netlist_->net_count());
  batch.count = patterns.size();
  load(batch.values, patterns);
  return batch;
}

BitVec CombinationalFrame::good_response(const BitVec& pattern) const {
  return unpack_lanes(good_response_words({pattern}), 1)[0];
}

std::vector<std::uint64_t> CombinationalFrame::good_response_words(
    const LoadedPatternBatch& batch) const {
  return good_response_words(batch, scratch_);
}

std::vector<std::uint64_t> CombinationalFrame::good_response_words(
    const LoadedPatternBatch& batch, Workspace& workspace) const {
  workspace = batch.values;
  evaluate(workspace, kNullNet, 0);
  return response_words(workspace);
}

std::vector<std::uint64_t> CombinationalFrame::good_response_words(
    const std::vector<BitVec>& patterns) const {
  return good_response_words(load_batch(patterns));
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<std::uint64_t>& good_words) const {
  return detect_mask(fault, batch, good_words, scratch_);
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const LoadedPatternBatch& batch,
    const std::vector<std::uint64_t>& good_words, Workspace& workspace) const {
  RETSCAN_CHECK(good_words.size() == response_width(),
                "CombinationalFrame::detect_mask: good responses missing");
  workspace = batch.values;
  const std::uint64_t fault_value = fault.stuck_at ? ~std::uint64_t{0} : 0;
  evaluate(workspace, fault.net, fault_value);
  // Word-wide good/faulty XOR over every observable: bit p of the result is
  // set iff pattern p sees a difference somewhere.
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < po_nets_.size(); ++i) {
    mask |= workspace[po_nets_[i]] ^ good_words[i];
  }
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const NetId d = netlist_->cell(flops_[i]).fanin[0];
    mask |= workspace[d] ^ good_words[po_nets_.size() + i];
  }
  return mask & lane_mask(batch.count);
}

std::uint64_t CombinationalFrame::detect_mask(
    const Fault& fault, const std::vector<BitVec>& patterns,
    const std::vector<std::uint64_t>& good_words) const {
  return detect_mask(fault, load_batch(patterns), good_words);
}

std::uint64_t CombinationalFrame::detect_mask(const Fault& fault,
                                              const std::vector<BitVec>& patterns,
                                              const std::vector<BitVec>& good) const {
  RETSCAN_CHECK(patterns.size() == good.size(),
                "CombinationalFrame::detect_mask: good responses missing");
  if (patterns.empty()) {
    return 0;
  }
  return detect_mask(fault, patterns, pack_lanes(good));
}

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns) {
  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);

  // One load + one good-machine evaluation per 64-pattern batch, then a
  // word-wide XOR detection per live fault.
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const CombinationalFrame::LoadedPatternBatch loaded = frame.load_batch(batch);
    const std::vector<std::uint64_t> good = frame.good_response_words(loaded);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected_by[fi] != npos) {
        continue;  // fault dropping
      }
      const std::uint64_t mask = frame.detect_mask(faults[fi], loaded, good);
      if (mask != 0) {
        result.detected_by[fi] = base + static_cast<std::size_t>(std::countr_zero(mask));
        ++result.detected;
      }
    }
  }
  return result;
}

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns,
                              ThreadPool& pool, std::size_t fault_shard) {
  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty()) {
    return result;
  }
  if (fault_shard == 0) {
    fault_shard = 1;
  }

  // Load every 64-pattern batch and its good-machine response once, up
  // front, in parallel — workers then share them read-only.
  struct Batch {
    std::size_t base = 0;
    CombinationalFrame::LoadedPatternBatch loaded;
    std::vector<std::uint64_t> good;
  };
  std::vector<Batch> batches((patterns.size() + 63) / 64);
  pool.parallel_for(batches.size(), [&](std::size_t b) {
    const std::size_t base = b * 64;
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<BitVec> slice(patterns.begin() + base,
                                    patterns.begin() + base + count);
    CombinationalFrame::Workspace workspace;
    batches[b].base = base;
    batches[b].loaded = frame.load_batch(slice);
    batches[b].good = frame.good_response_words(batches[b].loaded, workspace);
  });

  // Shard the fault list. Each worker owns its shard's detected_by slots
  // (disjoint writes) and a private workspace; fault dropping is per fault
  // — stop at the first batch that detects — so per-fault results match
  // the serial pass exactly.
  const std::size_t shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  std::vector<std::size_t> shard_detected(shard_count, 0);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * fault_shard;
    const std::size_t last = std::min(faults.size(), first + fault_shard);
    CombinationalFrame::Workspace workspace;
    for (std::size_t fi = first; fi < last; ++fi) {
      for (const Batch& batch : batches) {
        const std::uint64_t mask =
            frame.detect_mask(faults[fi], batch.loaded, batch.good, workspace);
        if (mask != 0) {
          result.detected_by[fi] =
              batch.base + static_cast<std::size_t>(std::countr_zero(mask));
          ++shard_detected[s];
          break;
        }
      }
    }
  });
  for (const std::size_t count : shard_detected) {
    result.detected += count;
  }
  return result;
}

}  // namespace retscan
