#include "atpg/fault_sim.hpp"

#include <limits>

#include "util/error.hpp"

namespace retscan {

CombinationalFrame::CombinationalFrame(const Netlist& netlist)
    : netlist_(&netlist), order_(netlist.combinational_order()) {
  for (const CellId input : netlist.inputs()) {
    pi_nets_.push_back(netlist.cell(input).out);
  }
  flops_ = netlist.flops();
  for (const CellId output : netlist.outputs()) {
    po_nets_.push_back(netlist.cell(output).fanin[0]);
  }
  // Constant cells are sources (not in combinational_order) and must be
  // initialized explicitly on every load.
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    if (netlist.cell(id).type == CellType::Const1) {
      const1_nets_.push_back(netlist.cell(id).out);
    }
  }
}

void CombinationalFrame::constrain(const std::string& input_name, bool value) {
  const NetId net = netlist_->find_net(input_name);
  for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
    if (pi_nets_[i] == net) {
      constraints_.emplace_back(i, value);
      return;
    }
  }
  RETSCAN_CHECK(false, "CombinationalFrame::constrain: not a primary input: " + input_name);
}

BitVec CombinationalFrame::random_pattern(Rng& rng) const {
  BitVec pattern = rng.next_bits(pattern_width());
  for (const auto& [index, value] : constraints_) {
    pattern.set(index, value);
  }
  return pattern;
}

void CombinationalFrame::load(std::vector<std::uint64_t>& values,
                              const std::vector<BitVec>& patterns) const {
  RETSCAN_CHECK(patterns.size() <= 64, "CombinationalFrame: batch larger than 64");
  std::fill(values.begin(), values.end(), 0);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    RETSCAN_CHECK(patterns[p].size() == pattern_width(),
                  "CombinationalFrame: pattern width mismatch");
    const std::uint64_t bit = std::uint64_t{1} << p;
    for (std::size_t i = 0; i < pi_nets_.size(); ++i) {
      if (patterns[p].get(i)) {
        values[pi_nets_[i]] |= bit;
      }
    }
    for (std::size_t i = 0; i < flops_.size(); ++i) {
      if (patterns[p].get(pi_nets_.size() + i)) {
        values[netlist_->cell(flops_[i]).out] |= bit;
      }
    }
  }
  for (const auto& [index, value] : constraints_) {
    values[pi_nets_[index]] = value ? ~std::uint64_t{0} : 0;
  }
  for (const NetId net : const1_nets_) {
    values[net] = ~std::uint64_t{0};
  }
}

void CombinationalFrame::evaluate(std::vector<std::uint64_t>& values, NetId fault_net,
                                  std::uint64_t fault_value) const {
  auto force = [&](NetId net) {
    if (net == fault_net) {
      values[net] = fault_value;
    }
  };
  // PIs and flop outputs may themselves be the fault site.
  if (fault_net != kNullNet) {
    force(fault_net);
  }
  for (const CellId id : order_) {
    const Cell& c = netlist_->cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    std::uint64_t value = 0;
    const auto& f = c.fanin;
    switch (c.type) {
      case CellType::Buf: value = values[f[0]]; break;
      case CellType::Not: value = ~values[f[0]]; break;
      case CellType::And2: value = values[f[0]] & values[f[1]]; break;
      case CellType::Or2: value = values[f[0]] | values[f[1]]; break;
      case CellType::Xor2: value = values[f[0]] ^ values[f[1]]; break;
      case CellType::Nand2: value = ~(values[f[0]] & values[f[1]]); break;
      case CellType::Nor2: value = ~(values[f[0]] | values[f[1]]); break;
      case CellType::Xnor2: value = ~(values[f[0]] ^ values[f[1]]); break;
      case CellType::Mux2:
        value = (values[f[0]] & values[f[2]]) | (~values[f[0]] & values[f[1]]);
        break;
      case CellType::Const0: value = 0; break;
      case CellType::Const1: value = ~std::uint64_t{0}; break;
      default:
        continue;  // sequential outputs already loaded
    }
    values[c.out] = value;
    if (c.out == fault_net) {
      values[c.out] = fault_value;
    }
  }
}

void CombinationalFrame::extract(const std::vector<std::uint64_t>& values, std::size_t count,
                                 std::vector<BitVec>& responses) const {
  responses.assign(count, BitVec(response_width()));
  for (std::size_t p = 0; p < count; ++p) {
    const std::uint64_t bit = std::uint64_t{1} << p;
    for (std::size_t i = 0; i < po_nets_.size(); ++i) {
      responses[p].set(i, (values[po_nets_[i]] & bit) != 0);
    }
    for (std::size_t i = 0; i < flops_.size(); ++i) {
      // PPO = functional D pin (capture path, se = 0).
      const NetId d = netlist_->cell(flops_[i]).fanin[0];
      responses[p].set(po_nets_.size() + i, (values[d] & bit) != 0);
    }
  }
}

BitVec CombinationalFrame::good_response(const BitVec& pattern) const {
  std::vector<std::uint64_t> values(netlist_->net_count(), 0);
  load(values, {pattern});
  evaluate(values, kNullNet, 0);
  std::vector<BitVec> responses;
  extract(values, 1, responses);
  return responses[0];
}

std::uint64_t CombinationalFrame::detect_mask(const Fault& fault,
                                              const std::vector<BitVec>& patterns,
                                              const std::vector<BitVec>& good) const {
  RETSCAN_CHECK(patterns.size() == good.size(),
                "CombinationalFrame::detect_mask: good responses missing");
  std::vector<std::uint64_t> values(netlist_->net_count(), 0);
  load(values, patterns);
  const std::uint64_t fault_value = fault.stuck_at ? ~std::uint64_t{0} : 0;
  evaluate(values, fault.net, fault_value);
  std::vector<BitVec> faulty;
  extract(values, patterns.size(), faulty);
  std::uint64_t mask = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    if (faulty[p] != good[p]) {
      mask |= std::uint64_t{1} << p;
    }
  }
  return mask;
}

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns) {
  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);

  // Precompute good responses batch by batch.
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    std::vector<BitVec> batch(patterns.begin() + base, patterns.begin() + base + count);
    std::vector<BitVec> good;
    good.reserve(count);
    for (const BitVec& p : batch) {
      good.push_back(frame.good_response(p));
    }
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected_by[fi] != npos) {
        continue;  // fault dropping
      }
      const std::uint64_t mask = frame.detect_mask(faults[fi], batch, good);
      if (mask != 0) {
        std::size_t first = 0;
        while (((mask >> first) & 1u) == 0) {
          ++first;
        }
        result.detected_by[fi] = base + first;
        ++result.detected;
      }
    }
  }
  return result;
}

}  // namespace retscan
