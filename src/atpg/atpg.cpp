#include "atpg/atpg.hpp"

#include <limits>

namespace retscan {

AtpgResult run_atpg(const CombinationalFrame& frame, const std::vector<Fault>& faults,
                    const AtpgOptions& options) {
  AtpgResult result;
  result.total_faults = faults.size();
  Rng rng(options.seed);

  std::vector<bool> detected(faults.size(), false);
  std::size_t remaining = faults.size();

  // --- Phase 1: random patterns, 64 at a time, with fault dropping.
  for (std::size_t base = 0; base < options.random_patterns && remaining > 0; base += 64) {
    const std::size_t count = std::min<std::size_t>(64, options.random_patterns - base);
    std::vector<BitVec> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(frame.random_pattern(rng));
    }
    const CombinationalFrame::LoadedPatternBatch loaded = frame.load_batch(batch);
    std::uint64_t useful = 0;  // patterns that detected something new
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (detected[fi]) {
        continue;
      }
      const std::uint64_t mask = frame.detect_mask(faults[fi], loaded, loaded.good);
      if (mask != 0) {
        detected[fi] = true;
        ++result.detected_random;
        --remaining;
        useful |= mask & (~mask + 1);  // credit the first detecting pattern
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      if ((useful >> i) & 1u) {
        result.patterns.push_back(batch[i]);
      }
    }
  }

  // --- Phase 2: PODEM top-up.
  if (options.run_podem && remaining > 0) {
    Podem podem(frame, options.max_backtracks);
    for (std::size_t fi = 0; fi < faults.size() && remaining > 0; ++fi) {
      if (detected[fi]) {
        continue;
      }
      const PodemResult generated = podem.generate(faults[fi], rng);
      if (generated.untestable) {
        ++result.untestable;
        detected[fi] = true;  // resolved, not counted as detected
        --remaining;
        continue;
      }
      if (!generated.success) {
        ++result.aborted;
        continue;
      }
      // Fault-simulate the new pattern against all remaining faults: load
      // and settle it once, then cone-evaluate each survivor against it.
      const CombinationalFrame::LoadedPatternBatch loaded =
          frame.load_batch({generated.pattern});
      bool useful = false;
      for (std::size_t fj = 0; fj < faults.size(); ++fj) {
        if (detected[fj]) {
          continue;
        }
        if (frame.detect_mask(faults[fj], loaded, loaded.good) != 0) {
          detected[fj] = true;
          ++result.detected_podem;
          --remaining;
          useful = true;
        }
      }
      if (useful) {
        result.patterns.push_back(generated.pattern);
      }
    }
  }
  return result;
}

}  // namespace retscan
