#pragma once

#include <cstddef>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "util/rng.hpp"

namespace retscan {

/// ATPG configuration.
struct AtpgOptions {
  std::size_t random_patterns = 256;   ///< random phase budget
  std::size_t max_backtracks = 500;    ///< PODEM budget per fault
  bool run_podem = true;               ///< deterministic top-up phase
  std::uint64_t seed = 1;
};

/// Full ATPG outcome: the compacted pattern set plus coverage accounting.
struct AtpgResult {
  std::vector<BitVec> patterns;
  std::size_t total_faults = 0;
  std::size_t detected_random = 0;
  std::size_t detected_podem = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;

  std::size_t detected() const { return detected_random + detected_podem; }
  /// Coverage over testable faults (untestable excluded), the number a
  /// test engineer signs off on.
  double coverage() const {
    const std::size_t testable = total_faults - untestable;
    return testable == 0 ? 1.0
                         : static_cast<double>(detected()) / static_cast<double>(testable);
  }
  /// Raw fault efficiency including untestable as resolved.
  double efficiency() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected() + untestable) /
                     static_cast<double>(total_faults);
  }
};

/// Two-phase ATPG over the combinational frame of a (scan) design:
/// 1. Random phase: batches of 64 random patterns, parallel fault
///    simulation with fault dropping; patterns that detect nothing new are
///    discarded (reverse compaction).
/// 2. Deterministic phase: PODEM on each remaining fault; successful
///    patterns are fault-simulated to drop collateral detections.
AtpgResult run_atpg(const CombinationalFrame& frame, const std::vector<Fault>& faults,
                    const AtpgOptions& options);

}  // namespace retscan
