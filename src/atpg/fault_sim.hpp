#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace retscan {

/// Combinational test frame of a (scan) design: flip-flop outputs are
/// pseudo-primary inputs (loaded through the chains), flip-flop D pins are
/// pseudo-primary outputs (captured and unloaded). A scan test pattern is
/// therefore an assignment to PIs + PPIs, and its response is the POs +
/// PPOs. This is exactly the view a scan tester has of the circuit.
class CombinationalFrame {
 public:
  explicit CombinationalFrame(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  /// Primary input nets (excludes scan controls only if caller wires them).
  const std::vector<NetId>& pi_nets() const { return pi_nets_; }
  /// Flop cells serving as PPI (Q) / PPO (D capture).
  const std::vector<CellId>& flops() const { return flops_; }
  const std::vector<NetId>& po_nets() const { return po_nets_; }
  std::size_t pattern_width() const { return pi_nets_.size() + flops_.size(); }
  std::size_t response_width() const { return po_nets_.size() + flops_.size(); }

  /// Constrain a primary input to a fixed value during capture (e.g. the
  /// scan-enable, retain and monitor controls must be 0 while a pattern is
  /// applied). Constrained bits are forced in every pattern and excluded
  /// from PODEM's decision space.
  void constrain(const std::string& input_name, bool value);
  /// Constraints as (pattern index, value) pairs.
  const std::vector<std::pair<std::size_t, bool>>& constraints() const {
    return constraints_;
  }

  /// A pattern assigns pattern_width() bits: PIs first, then PPIs.
  BitVec random_pattern(Rng& rng) const;

  /// Good-machine response of a single pattern.
  BitVec good_response(const BitVec& pattern) const;

  /// 64-way parallel-pattern single-fault propagation: returns the set of
  /// pattern indices (bitmask) in `patterns` that detect `fault`, given the
  /// precomputed good responses. Patterns beyond 64 must be batched by the
  /// caller.
  std::uint64_t detect_mask(const Fault& fault, const std::vector<BitVec>& patterns,
                            const std::vector<BitVec>& good) const;

 private:
  /// Word-parallel evaluation of up to 64 patterns; values[net] holds one
  /// bit per pattern. If fault_net != kNullNet its value is forced.
  void evaluate(std::vector<std::uint64_t>& values, NetId fault_net,
                std::uint64_t fault_value) const;
  void load(std::vector<std::uint64_t>& values, const std::vector<BitVec>& patterns) const;
  void extract(const std::vector<std::uint64_t>& values, std::size_t count,
               std::vector<BitVec>& responses) const;

  const Netlist* netlist_;
  std::vector<CellId> order_;
  std::vector<NetId> pi_nets_;
  std::vector<CellId> flops_;
  std::vector<NetId> po_nets_;
  std::vector<std::pair<std::size_t, bool>> constraints_;
  std::vector<NetId> const1_nets_;
};

/// Fault-simulate a pattern set over a fault list with fault dropping.
struct FaultSimResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  /// detected_by[i] = index of the first detecting pattern, or npos.
  std::vector<std::size_t> detected_by;
  double coverage() const {
    return total_faults == 0 ? 1.0
                             : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
};

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns);

}  // namespace retscan
