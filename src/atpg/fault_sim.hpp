#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace retscan {

/// Combinational test frame of a (scan) design: flip-flop outputs are
/// pseudo-primary inputs (loaded through the chains), flip-flop D pins are
/// pseudo-primary outputs (captured and unloaded). A scan test pattern is
/// therefore an assignment to PIs + PPIs, and its response is the POs +
/// PPOs. This is exactly the view a scan tester has of the circuit.
class CombinationalFrame {
 public:
  explicit CombinationalFrame(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  /// Primary input nets (excludes scan controls only if caller wires them).
  const std::vector<NetId>& pi_nets() const { return pi_nets_; }
  /// Flop cells serving as PPI (Q) / PPO (D capture).
  const std::vector<CellId>& flops() const { return flops_; }
  const std::vector<NetId>& po_nets() const { return po_nets_; }
  std::size_t pattern_width() const { return pi_nets_.size() + flops_.size(); }
  std::size_t response_width() const { return po_nets_.size() + flops_.size(); }

  /// Constrain a primary input to a fixed value during capture (e.g. the
  /// scan-enable, retain and monitor controls must be 0 while a pattern is
  /// applied). Constrained bits are forced in every pattern and excluded
  /// from PODEM's decision space.
  void constrain(const std::string& input_name, bool value);
  /// Constraints as (pattern index, value) pairs.
  const std::vector<std::pair<std::size_t, bool>>& constraints() const {
    return constraints_;
  }

  /// A pattern assigns pattern_width() bits: PIs first, then PPIs.
  BitVec random_pattern(Rng& rng) const;

  /// Good-machine response of a single pattern.
  BitVec good_response(const BitVec& pattern) const;

  /// Up to 64 patterns loaded into lane-word net values: inputs, pseudo
  /// inputs, constraints and constants set, everything else zero. Loading is
  /// the per-batch cost; each fault evaluation then starts from a plain word
  /// copy of this, so simulating F faults costs one load + F evaluations.
  struct LoadedPatternBatch {
    std::vector<std::uint64_t> values;  // indexed by NetId
    std::size_t count = 0;              // patterns in the batch
  };
  LoadedPatternBatch load_batch(const std::vector<BitVec>& patterns) const;

  /// Per-thread evaluation scratch. The frame itself is immutable during
  /// queries; passing an explicit workspace to the *_ws overloads below
  /// lets any number of threads share one frame concurrently.
  using Workspace = std::vector<std::uint64_t>;

  /// Good-machine responses of up to 64 patterns in lane-word form: one word
  /// per observable (POs first, then flop D captures), lane p = pattern p.
  /// This is the fast currency of the fault simulator — detection is a
  /// word-wide XOR against these, with no per-pattern unpacking.
  std::vector<std::uint64_t> good_response_words(const LoadedPatternBatch& batch) const;
  std::vector<std::uint64_t> good_response_words(const std::vector<BitVec>& patterns) const;
  std::vector<std::uint64_t> good_response_words(const LoadedPatternBatch& batch,
                                                 Workspace& workspace) const;

  /// 64-way parallel-pattern single-fault propagation: returns the set of
  /// pattern indices (bitmask) in the batch that detect `fault`, given the
  /// precomputed good responses. Patterns beyond 64 must be batched by the
  /// caller.
  std::uint64_t detect_mask(const Fault& fault, const LoadedPatternBatch& batch,
                            const std::vector<std::uint64_t>& good_words) const;
  std::uint64_t detect_mask(const Fault& fault, const LoadedPatternBatch& batch,
                            const std::vector<std::uint64_t>& good_words,
                            Workspace& workspace) const;
  std::uint64_t detect_mask(const Fault& fault, const std::vector<BitVec>& patterns,
                            const std::vector<std::uint64_t>& good_words) const;
  /// Convenience overload taking per-pattern good responses.
  std::uint64_t detect_mask(const Fault& fault, const std::vector<BitVec>& patterns,
                            const std::vector<BitVec>& good) const;

 private:
  /// Word-parallel evaluation of up to 64 patterns through the shared gate
  /// kernel (sim/eval_kernel.hpp); values[net] holds one bit per pattern.
  /// If fault_net != kNullNet its value is forced.
  void evaluate(std::vector<std::uint64_t>& values, NetId fault_net,
                std::uint64_t fault_value) const;
  void load(std::vector<std::uint64_t>& values, const std::vector<BitVec>& patterns) const;
  /// Observable values (response_width() words) from settled net values.
  std::vector<std::uint64_t> response_words(const std::vector<std::uint64_t>& values) const;

  const Netlist* netlist_;
  std::vector<CellId> order_;
  std::vector<NetId> pi_nets_;
  std::vector<CellId> flops_;
  std::vector<NetId> po_nets_;
  std::vector<std::pair<std::size_t, bool>> constraints_;
  std::vector<NetId> const1_nets_;
  mutable std::vector<std::uint64_t> scratch_;  // evaluation workspace
};

/// Fault-simulate a pattern set over a fault list with fault dropping.
struct FaultSimResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  /// detected_by[i] = index of the first detecting pattern, or npos.
  std::vector<std::size_t> detected_by;
  double coverage() const {
    return total_faults == 0 ? 1.0
                             : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
};

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns);

/// Multi-threaded fault simulation: pattern batches are preloaded once,
/// then the fault list is sharded across the pool (each worker carries its
/// own evaluation workspace). Per-fault results — including the index of
/// the first detecting pattern — are a pure function of (fault, patterns),
/// so the result is identical to the serial fault_simulate() at any thread
/// count. `fault_shard` is the fault-list chunk a worker claims at a time.
FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns,
                              ThreadPool& pool, std::size_t fault_shard = 128);

}  // namespace retscan
