#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace retscan {

/// Combinational test frame of a (scan) design: flip-flop outputs are
/// pseudo-primary inputs (loaded through the chains), flip-flop D pins are
/// pseudo-primary outputs (captured and unloaded). A scan test pattern is
/// therefore an assignment to PIs + PPIs, and its response is the POs +
/// PPOs. This is exactly the view a scan tester has of the circuit.
///
/// Evaluation runs on the compiled simulation core (sim/compiled_netlist):
/// batches are loaded and settled once into slot-indexed good-machine
/// values, and each fault is then simulated *incrementally* — only its
/// fanout cone is re-evaluated, only its reachable observation points are
/// compared, and the touched slots are restored afterwards — so per-fault
/// cost is O(cone), not O(circuit). Cones are built lazily per fault site
/// and cached (thread-safe; the pooled fault simulator warms the cache
/// before fanning out).
class CombinationalFrame {
 public:
  explicit CombinationalFrame(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  /// Primary input nets (excludes scan controls only if caller wires them).
  const std::vector<NetId>& pi_nets() const { return pi_nets_; }
  /// Flop cells serving as PPI (Q) / PPO (D capture).
  const std::vector<CellId>& flops() const { return flops_; }
  const std::vector<NetId>& po_nets() const { return po_nets_; }
  std::size_t pattern_width() const { return pi_nets_.size() + flops_.size(); }
  std::size_t response_width() const { return po_nets_.size() + flops_.size(); }

  /// Constrain a primary input to a fixed value during capture (e.g. the
  /// scan-enable, retain and monitor controls must be 0 while a pattern is
  /// applied). Constrained bits are forced in every pattern and excluded
  /// from PODEM's decision space.
  void constrain(const std::string& input_name, bool value);
  /// Constraints as (pattern index, value) pairs.
  const std::vector<std::pair<std::size_t, bool>>& constraints() const {
    return constraints_;
  }

  /// A pattern assigns pattern_width() bits: PIs first, then PPIs.
  BitVec random_pattern(Rng& rng) const;

  /// Good-machine response of a single pattern.
  BitVec good_response(const BitVec& pattern) const;

  /// Up to kLaneBlockBits patterns loaded AND settled: `settled` holds the
  /// slot-indexed good-machine values (one lane-major LaneBlock per slot)
  /// after one full compiled block sweep, `good` the observable response
  /// blocks. Loading+settling is the per-batch cost; each fault evaluation
  /// is then an incremental cone pass over `settled`, so simulating F faults
  /// costs one settle + F cone evaluations — each now covering 256 patterns
  /// at the default lane width.
  struct LoadedPatternBatch {
    std::vector<LaneBlock> settled;  // indexed by value slot
    std::vector<LaneBlock> good;     // response_width() observable blocks
    std::size_t count = 0;           // patterns in the batch
    std::uint64_t tag = 0;           // workspace-sync identity
  };
  LoadedPatternBatch load_batch(const std::vector<BitVec>& patterns) const;

  /// Per-thread evaluation scratch. The frame itself is immutable during
  /// queries; passing an explicit workspace to the *_ws overloads below
  /// lets any number of threads share one frame concurrently. The workspace
  /// remembers which batch it mirrors (cone undo keeps it settled), so
  /// consecutive queries against the same batch skip the baseline copy.
  struct Workspace {
    std::vector<LaneBlock> values;
    std::uint64_t synced_tag = 0;
  };

  /// Good-machine responses of up to 64 patterns in lane-word form: one word
  /// per observable (POs first, then flop D captures), lane p = pattern p.
  /// Detection inside the frame is now a block-wide XOR (see detect_block);
  /// this word view remains the currency of the scan-delivery comparators,
  /// which shift 64 chains at a time. For an already-loaded batch it is word
  /// 0 of each LoadedPatternBatch::good block.
  std::vector<std::uint64_t> good_response_words(const std::vector<BitVec>& patterns) const;

  /// Precomputed fanout cone of one fault site within this frame: the
  /// compiled cone slice plus the (good-word index, value slot) of every
  /// observation point the fault can reach.
  struct FaultCone {
    CompiledNetlist::Cone cone;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> observables;
  };
  /// The cone of a fault site, built on first use and cached (thread-safe,
  /// one lock per call; the returned reference stays valid for the frame's
  /// lifetime). Hot loops resolve this once per fault and pass it to the
  /// cone-taking detect_mask overload so the cache lock stays out of the
  /// inner loop. The cache holds every queried site's cone — O(sites x
  /// average cone size) words total, the time/space trade that makes
  /// per-fault evaluation O(cone); for circuits where that footprint is too
  /// large, detect_mask_full remains the O(1)-scratch path.
  const FaultCone& fault_cone(NetId net) const;

  /// Cone of an arbitrary dirty set of nets — the multi-source
  /// generalization the event scheduler shares: the instruction slice any of
  /// `sources` can disturb, plus every observation point it can reach.
  /// Uncached (dirty sets are ad hoc); single fault sites should keep using
  /// fault_cone().
  FaultCone dirty_cone(const std::vector<NetId>& sources) const;

  /// Replay a dirty set over a loaded batch: force `forced[i]` into
  /// `cone.cone.source_slots[i]`, re-evaluate the cone slice, and return the
  /// per-lane OR of observable differences against `good_blocks`. The
  /// workspace is restored to the batch's settled values before returning.
  /// detect_block is the single-source specialization of this (forced =
  /// stuck-at broadcast).
  LaneBlock replay_dirty(const FaultCone& cone, const std::vector<LaneBlock>& forced,
                         const LoadedPatternBatch& batch,
                         const std::vector<LaneBlock>& good_blocks,
                         Workspace& workspace) const;

  /// Block-wide parallel-pattern single-fault propagation: lane p of the
  /// returned LaneBlock is set iff pattern p in the batch detects `fault`,
  /// given the precomputed good responses. Patterns beyond kLaneBlockBits
  /// must be batched by the caller. Evaluates only the fault's fanout cone.
  LaneBlock detect_block(const Fault& fault, const LoadedPatternBatch& batch,
                         const std::vector<LaneBlock>& good_blocks) const;
  LaneBlock detect_block(const Fault& fault, const LoadedPatternBatch& batch,
                         const std::vector<LaneBlock>& good_blocks,
                         Workspace& workspace) const;
  /// Hot-loop variant: the caller resolved `cone` (= fault_cone(fault.net))
  /// up front, so no cache lookup or lock is taken here.
  LaneBlock detect_block(const Fault& fault, const FaultCone& cone,
                         const LoadedPatternBatch& batch,
                         const std::vector<LaneBlock>& good_blocks,
                         Workspace& workspace) const;

  /// Single-word wrappers over detect_block for batches of at most 64
  /// patterns (the ATPG generation granularity): bit p of the returned word
  /// is set iff pattern p detects the fault.
  std::uint64_t detect_mask(const Fault& fault, const LoadedPatternBatch& batch,
                            const std::vector<LaneBlock>& good_blocks) const;
  std::uint64_t detect_mask(const Fault& fault, const LoadedPatternBatch& batch,
                            const std::vector<LaneBlock>& good_blocks,
                            Workspace& workspace) const;
  std::uint64_t detect_mask(const Fault& fault, const FaultCone& cone,
                            const LoadedPatternBatch& batch,
                            const std::vector<LaneBlock>& good_blocks,
                            Workspace& workspace) const;
  std::uint64_t detect_mask(const Fault& fault, const std::vector<BitVec>& patterns,
                            const std::vector<std::uint64_t>& good_words) const;
  /// Convenience overload taking per-pattern good responses.
  std::uint64_t detect_mask(const Fault& fault, const std::vector<BitVec>& patterns,
                            const std::vector<BitVec>& good) const;

  /// Reference full-circuit detection through the retained interpreter path
  /// (per-Cell walk, NetId-indexed values, no cones): the independent oracle
  /// the cone path is tested against, and the baseline bench_engine times.
  std::uint64_t detect_mask_full(const Fault& fault, const std::vector<BitVec>& patterns,
                                 const std::vector<std::uint64_t>& good_words) const;

  /// Pre-build the cone of every fault site in `faults`. The pooled fault
  /// simulator calls this on the caller thread so workers only take cache
  /// hits; optional elsewhere (cones build lazily under a lock).
  void warm_cones(const std::vector<Fault>& faults) const;

 private:
  void load(std::vector<LaneBlock>& slot_values,
            const std::vector<BitVec>& patterns) const;
  /// Shared cone-replay core of detect_block/replay_dirty; forced values are
  /// passed as a raw span so the single-fault hot loop never allocates.
  LaneBlock replay_span(const FaultCone& cone, const LaneBlock* forced,
                        std::size_t forced_count, const LoadedPatternBatch& batch,
                        const std::vector<LaneBlock>& good_blocks,
                        Workspace& workspace) const;

  const Netlist* netlist_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  std::vector<NetId> pi_nets_;
  std::vector<CellId> flops_;
  std::vector<NetId> po_nets_;
  std::vector<std::uint32_t> pi_slots_;   // pi_nets_ as value slots
  std::vector<std::uint32_t> ppi_slots_;  // flop Q slots (pattern layout order)
  std::vector<std::uint32_t> obs_slots_;  // PO slots then flop D slots
  std::vector<std::uint32_t> obs_word_of_slot_;  // slot -> good-word index (or kNoObs)
  std::vector<std::uint32_t> const1_slots_;
  std::vector<NetId> const1_nets_;  // for the reference interpreter path
  std::vector<std::pair<std::size_t, bool>> constraints_;
  mutable Workspace scratch_;  // evaluation workspace (single-thread paths)
  mutable std::mutex cone_mutex_;
  mutable std::unordered_map<NetId, std::unique_ptr<FaultCone>> cones_;
};

/// Fault-simulate a pattern set over a fault list with fault dropping.
struct FaultSimResult {
  /// Sentinel in detected_by for faults no pattern detected.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t total_faults = 0;
  std::size_t detected = 0;
  /// detected_by[i] = index of the first detecting pattern, or npos.
  std::vector<std::size_t> detected_by;
  double coverage() const {
    return total_faults == 0 ? 1.0
                             : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
};

FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns);

/// Multi-threaded fault simulation: pattern batches are preloaded once,
/// then the fault list is sharded across the pool (each worker carries its
/// own evaluation workspace). Per-fault results — including the index of
/// the first detecting pattern — are a pure function of (fault, patterns),
/// so the result is identical to the serial fault_simulate() at any thread
/// count. `fault_shard` is the fault-list chunk a worker claims at a time.
FaultSimResult fault_simulate(const CombinationalFrame& frame,
                              const std::vector<Fault>& faults,
                              const std::vector<BitVec>& patterns,
                              ThreadPool& pool, std::size_t fault_shard = 128);

}  // namespace retscan
