#include "atpg/scan_test.hpp"

#include <algorithm>
#include <bit>

#include "scan/scan_io.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {

/// Split a frame pattern's PPI section into per-chain load data plus direct
/// assignments for flops outside the chains (monitor storage).
struct PpiSplit {
  std::vector<BitVec> chain_data;
  std::vector<std::pair<CellId, bool>> other_flops;
};

PpiSplit split_ppi(const CombinationalFrame& frame, const ScanChains& chains,
                   const BitVec& pattern) {
  PpiSplit split;
  split.chain_data.assign(chains.chain_count(), BitVec(chains.length()));
  const std::size_t pi_count = frame.pi_nets().size();
  const auto& flops = frame.flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const bool value = pattern.get(pi_count + i);
    const auto it = chains.position_of.find(flops[i]);
    if (it != chains.position_of.end()) {
      split.chain_data[it->second.first].set(it->second.second, value);
    } else {
      split.other_flops.emplace_back(flops[i], value);
    }
  }
  return split;
}

void apply_pis(Simulator& sim, const CombinationalFrame& frame, const BitVec& pattern) {
  const auto& pis = frame.pi_nets();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    sim.set_input(pis[i], pattern.get(i));
  }
}

/// Compare the observable response against the good machine. POs are read
/// pre-capture; flop PPOs are read from the post-capture states.
bool response_matches(Simulator& sim, const CombinationalFrame& frame,
                      const BitVec& good) {
  const auto& pos = frame.po_nets();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (sim.net_value(pos[i]) != good.get(i)) {
      return false;
    }
  }
  return true;
}

bool captured_matches(Simulator& sim, const CombinationalFrame& frame, const BitVec& good) {
  const std::size_t po_count = frame.po_nets().size();
  const auto& flops = frame.flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    if (sim.flop_state(flops[i]) != good.get(po_count + i)) {
      return false;
    }
  }
  return true;
}

/// Per-lane view of a 64-pattern batch: chain load data and direct flop
/// assignments transposed into lane words.
struct PackedPpiSplit {
  // chain_words[c][p] = lane word destined for chain c, position p.
  std::vector<std::vector<LaneWord>> chain_words;
  std::vector<std::pair<CellId, LaneWord>> other_flops;
};

/// `pattern_words` is pack_lanes(batch): one lane word per pattern bit (PIs
/// first, then PPIs — the CombinationalFrame layout).
PackedPpiSplit packed_split_ppi(const CombinationalFrame& frame, const ScanChains& chains,
                                const std::vector<LaneWord>& pattern_words) {
  PackedPpiSplit split;
  split.chain_words.assign(chains.chain_count(),
                           std::vector<LaneWord>(chains.length(), 0));
  const std::size_t pi_count = frame.pi_nets().size();
  const auto& flops = frame.flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const LaneWord word = pattern_words[pi_count + i];
    const auto it = chains.position_of.find(flops[i]);
    if (it != chains.position_of.end()) {
      split.chain_words[it->second.first][it->second.second] = word;
    } else {
      split.other_flops.emplace_back(flops[i], word);
    }
  }
  return split;
}

/// Capture the batch and return the per-lane mismatch mask against the
/// good-machine lane words (POs read pre-capture, flop PPOs post-capture).
LaneWord capture_and_check_packed(PackedSim& sim, const CombinationalFrame& frame,
                                  NetId se_net, const std::vector<LaneWord>& pattern_words,
                                  std::size_t count,
                                  const std::vector<std::uint64_t>& good_words) {
  const auto& pis = frame.pi_nets();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    sim.set_input(pis[i], pattern_words[i]);
  }
  sim.set_input_all(se_net, false);
  sim.eval();
  LaneWord mismatch = 0;
  const auto& pos = frame.po_nets();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    mismatch |= sim.net_lanes(pos[i]) ^ good_words[i];
  }
  sim.step();
  const auto& flops = frame.flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    mismatch |= sim.flop_lanes(flops[i]) ^ good_words[pos.size() + i];
  }
  return mismatch & lane_mask(count);
}

}  // namespace

ScanTestResult apply_scan_test(Simulator& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns) {
  ScanTestResult result;
  for (const BitVec& pattern : patterns) {
    const BitVec good = frame.good_response(pattern);
    const PpiSplit split = split_ppi(frame, chains, pattern);

    // Shift phase (se asserted inside scan_load).
    if (chains.retain != kNullNet) {
      sim.set_input(chains.retain, false);
    }
    scan_load(sim, chains, split.chain_data);
    sim.set_flop_states(split.other_flops);

    // Capture phase: functional inputs from the pattern, se released.
    apply_pis(sim, frame, pattern);
    sim.set_input(chains.se, false);
    sim.eval();
    bool ok = response_matches(sim, frame, good);
    sim.step();
    ok = ok && captured_matches(sim, frame, good);

    ++result.patterns_applied;
    if (!ok) {
      ++result.mismatches;
    }
  }
  return result;
}

ScanTestResult apply_scan_test(PackedSim& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns) {
  ScanTestResult result;
  const std::size_t l = chains.length();
  for (std::size_t base = 0; base < patterns.size(); base += PackedSim::lane_count()) {
    const std::size_t count =
        std::min<std::size_t>(PackedSim::lane_count(), patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const std::vector<std::uint64_t> good = frame.good_response_words(batch);
    const std::vector<LaneWord> pattern_words = pack_lanes(batch);
    const PackedPpiSplit split = packed_split_ppi(frame, chains, pattern_words);

    // Shift phase: every lane loads its own pattern, one chain bit per lane
    // per cycle; the bit destined for position l-1 enters first.
    if (chains.retain != kNullNet) {
      sim.set_input_all(chains.retain, false);
    }
    sim.set_input_all(chains.se, true);
    for (std::size_t t = 0; t < l; ++t) {
      for (std::size_t c = 0; c < chains.chain_count(); ++c) {
        sim.set_input(chains.si[c], split.chain_words[c][l - 1 - t]);
      }
      sim.step();
    }
    for (const auto& [flop, word] : split.other_flops) {
      sim.set_flop_lanes(flop, word);
    }
    sim.refresh();

    const LaneWord mismatch =
        capture_and_check_packed(sim, frame, chains.se, pattern_words, count, good);
    result.patterns_applied += count;
    result.mismatches += static_cast<std::size_t>(std::popcount(mismatch));
  }
  return result;
}

ScanTestResult apply_test_mode_scan_test(RetentionSession& session,
                                         const ProtectedDesign& design,
                                         const CombinationalFrame& frame,
                                         const std::vector<BitVec>& patterns) {
  ScanTestResult result;
  Simulator& sim = session.sim();
  const ScanChains& chains = design.chains();
  const TestModeConfig& test = design.test_config();
  const std::size_t l = design.chain_length();
  const std::size_t group_len = test.concatenated_length(l);
  const NetId test_mode = design.netlist().find_net("test_mode");

  for (const BitVec& pattern : patterns) {
    const BitVec good = frame.good_response(pattern);
    const PpiSplit split = split_ppi(frame, chains, pattern);

    // Build per-test-group serial streams: long-chain index j corresponds
    // to chain groups[g][j / l], position j % l; the bit destined for the
    // largest index must enter first.
    sim.set_input(chains.se, true);
    sim.set_input(test_mode, true);
    if (chains.retain != kNullNet) {
      sim.set_input(chains.retain, false);
    }
    for (std::size_t t = 0; t < group_len; ++t) {
      for (std::size_t g = 0; g < test.groups.size(); ++g) {
        const std::size_t j = group_len - 1 - t;
        const std::size_t chain = test.groups[g][j / l];
        sim.set_input(design.netlist().find_net("tsi" + std::to_string(g)),
                      split.chain_data[chain].get(j % l));
      }
      sim.step();
    }
    sim.set_flop_states(split.other_flops);

    // Capture with all scan/monitor controls at their constrained values.
    apply_pis(sim, frame, pattern);
    sim.set_input(chains.se, false);
    sim.eval();
    bool ok = response_matches(sim, frame, good);
    sim.step();
    ok = ok && captured_matches(sim, frame, good);

    ++result.patterns_applied;
    if (!ok) {
      ++result.mismatches;
    }
  }
  return result;
}

namespace {

/// Packed test-mode delivery over patterns [first, first + count): the
/// shared worker of the serial and pooled variants. Batch loading settles
/// into per-call state, so concurrent shards can share one frame.
ScanTestResult run_test_mode_packed_range(const ProtectedDesign& design,
                                          const CombinationalFrame& frame,
                                          const std::vector<BitVec>& patterns,
                                          std::size_t first, std::size_t total) {
  ScanTestResult result;
  PackedSim sim(design.netlist());
  const ScanChains& chains = design.chains();
  const TestModeConfig& test = design.test_config();
  const std::size_t l = design.chain_length();
  const std::size_t group_len = test.concatenated_length(l);
  const NetId test_mode = design.netlist().find_net("test_mode");
  std::vector<NetId> tsi(test.groups.size());
  for (std::size_t g = 0; g < test.groups.size(); ++g) {
    tsi[g] = design.netlist().find_net("tsi" + std::to_string(g));
  }

  for (std::size_t base = first; base < first + total;
       base += PackedSim::lane_count()) {
    const std::size_t count =
        std::min<std::size_t>(PackedSim::lane_count(), first + total - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const std::vector<std::uint64_t> good = frame.good_response_words(batch);
    const std::vector<LaneWord> pattern_words = pack_lanes(batch);
    const PackedPpiSplit split = packed_split_ppi(frame, chains, pattern_words);

    // Per-test-group serial streams, one pattern per lane: long-chain index
    // j maps to chain groups[g][j / l], position j % l; the bit for the
    // largest index enters first.
    sim.set_input_all(chains.se, true);
    sim.set_input_all(test_mode, true);
    if (chains.retain != kNullNet) {
      sim.set_input_all(chains.retain, false);
    }
    for (std::size_t t = 0; t < group_len; ++t) {
      const std::size_t j = group_len - 1 - t;
      for (std::size_t g = 0; g < test.groups.size(); ++g) {
        const std::size_t chain = test.groups[g][j / l];
        sim.set_input(tsi[g], split.chain_words[chain][j % l]);
      }
      sim.step();
    }
    for (const auto& [flop, word] : split.other_flops) {
      sim.set_flop_lanes(flop, word);
    }
    sim.refresh();

    const LaneWord mismatch =
        capture_and_check_packed(sim, frame, chains.se, pattern_words, count, good);
    result.patterns_applied += count;
    result.mismatches += static_cast<std::size_t>(std::popcount(mismatch));
  }
  return result;
}

}  // namespace

ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns) {
  return run_test_mode_packed_range(design, frame, patterns, 0, patterns.size());
}

ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns,
                                                ThreadPool& pool,
                                                std::size_t patterns_per_shard) {
  // Shards must be whole 64-lane batches so the pooled pass forms exactly
  // the same batches as the serial one.
  patterns_per_shard = test_mode_patterns_per_shard(patterns_per_shard);
  const std::size_t shard_count =
      (patterns.size() + patterns_per_shard - 1) / patterns_per_shard;
  std::vector<ScanTestResult> partial(shard_count);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * patterns_per_shard;
    const std::size_t count = std::min(patterns_per_shard, patterns.size() - first);
    partial[s] = run_test_mode_packed_range(design, frame, patterns, first, count);
  });
  ScanTestResult merged;
  for (const ScanTestResult& p : partial) {
    merged.patterns_applied += p.patterns_applied;
    merged.mismatches += p.mismatches;
  }
  return merged;
}

}  // namespace retscan
