#include "atpg/fault_models.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "sim/compiled_netlist.hpp"
#include "util/rng.hpp"

namespace retscan {

namespace {
constexpr std::size_t npos = FaultSimResult::npos;
}

// --- transition-delay faults ------------------------------------------------

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& netlist) {
  // Same stem universe as stuck-at: SA0 site ↔ slow-to-rise, SA1 ↔
  // slow-to-fall, so coverage numbers are comparable across models.
  std::vector<TransitionFault> faults;
  for (const Fault& fault : enumerate_faults(netlist)) {
    faults.push_back({fault.net, !fault.stuck_at});
  }
  return faults;
}

std::string transition_fault_name(const Netlist& netlist, const TransitionFault& fault) {
  const std::string& name = netlist.net_name(fault.net);
  return (name.empty() ? "net" + std::to_string(fault.net) : name) +
         (fault.slow_to_rise ? "/STR" : "/STF");
}

namespace {

/// The capture-cycle alias of a transition fault: the net frozen at the
/// transition's initial value.
Fault capture_alias(const TransitionFault& fault) {
  return {fault.net, !fault.slow_to_rise};
}

/// Detection mask of one transition fault over a loaded launch/capture
/// batch pair (lane k = pattern pair k): capture must detect the stuck-at
/// alias AND the launch pattern must set the net to the initial value.
LaneBlock transition_detect(const CombinationalFrame& frame, const TransitionFault& fault,
                            const CombinationalFrame::FaultCone& cone,
                            std::uint32_t slot,
                            const CombinationalFrame::LoadedPatternBatch& launch,
                            const CombinationalFrame::LoadedPatternBatch& capture,
                            CombinationalFrame::Workspace& workspace) {
  const LaneBlock detect =
      frame.detect_block(capture_alias(fault), cone, capture, capture.good, workspace);
  const LaneBlock& launch_vals = launch.settled[slot];
  return fault.slow_to_rise ? detect & ~launch_vals : detect & launch_vals;
}

}  // namespace

FaultSimResult transition_fault_simulate(const CombinationalFrame& frame,
                                         const std::vector<TransitionFault>& faults,
                                         const std::vector<BitVec>& patterns) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || patterns.size() < 2) {
    return result;
  }
  const auto compiled = frame.netlist().compiled();
  std::vector<const CombinationalFrame::FaultCone*> cones;
  std::vector<std::uint32_t> slots;
  cones.reserve(faults.size());
  slots.reserve(faults.size());
  for (const TransitionFault& fault : faults) {
    cones.push_back(&frame.fault_cone(fault.net));
    slots.push_back(compiled->slot(fault.net));
  }
  CombinationalFrame::Workspace workspace;
  const std::size_t pairs = patterns.size() - 1;
  for (std::size_t base = 0; base < pairs; base += kLaneBlockBits) {
    const std::size_t count = std::min<std::size_t>(kLaneBlockBits, pairs - base);
    const std::vector<BitVec> launch_slice(patterns.begin() + base,
                                           patterns.begin() + base + count);
    const std::vector<BitVec> capture_slice(patterns.begin() + base + 1,
                                            patterns.begin() + base + 1 + count);
    const auto launch = frame.load_batch(launch_slice);
    const auto capture = frame.load_batch(capture_slice);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected_by[fi] != npos) {
        continue;  // fault dropping
      }
      const LaneBlock mask = transition_detect(frame, faults[fi], *cones[fi], slots[fi],
                                               launch, capture, workspace);
      if (block_any(mask)) {
        result.detected_by[fi] = base + block_first_lane(mask);
        ++result.detected;
      }
    }
  }
  return result;
}

FaultSimResult transition_fault_simulate(const CombinationalFrame& frame,
                                         const std::vector<TransitionFault>& faults,
                                         const std::vector<BitVec>& patterns,
                                         ThreadPool& pool, std::size_t fault_shard) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || patterns.size() < 2) {
    return result;
  }
  if (fault_shard == 0) {
    fault_shard = 1;
  }
  const auto compiled = frame.netlist().compiled();
  {
    std::vector<Fault> aliases;
    aliases.reserve(faults.size());
    for (const TransitionFault& fault : faults) {
      aliases.push_back(capture_alias(fault));
    }
    frame.warm_cones(aliases);
  }

  struct BatchPair {
    std::size_t base = 0;
    CombinationalFrame::LoadedPatternBatch launch;
    CombinationalFrame::LoadedPatternBatch capture;
  };
  const std::size_t pairs = patterns.size() - 1;
  std::vector<BatchPair> batches((pairs + kLaneBlockBits - 1) / kLaneBlockBits);
  pool.parallel_for(batches.size(), [&](std::size_t b) {
    const std::size_t base = b * kLaneBlockBits;
    const std::size_t count = std::min<std::size_t>(kLaneBlockBits, pairs - base);
    batches[b].base = base;
    batches[b].launch = frame.load_batch(
        {patterns.begin() + base, patterns.begin() + base + count});
    batches[b].capture = frame.load_batch(
        {patterns.begin() + base + 1, patterns.begin() + base + 1 + count});
  });

  const std::size_t shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  std::vector<std::size_t> shard_detected(shard_count, 0);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * fault_shard;
    const std::size_t last = std::min(faults.size(), first + fault_shard);
    CombinationalFrame::Workspace workspace;
    std::vector<std::size_t> live;
    std::vector<const CombinationalFrame::FaultCone*> cones(last - first, nullptr);
    std::vector<std::uint32_t> slots(last - first, 0);
    live.reserve(last - first);
    for (std::size_t fi = first; fi < last; ++fi) {
      live.push_back(fi);
      cones[fi - first] = &frame.fault_cone(faults[fi].net);
      slots[fi - first] = compiled->slot(faults[fi].net);
    }
    for (const BatchPair& batch : batches) {
      if (live.empty()) {
        break;
      }
      std::size_t kept = 0;
      for (const std::size_t fi : live) {
        const LaneBlock mask =
            transition_detect(frame, faults[fi], *cones[fi - first], slots[fi - first],
                              batch.launch, batch.capture, workspace);
        if (block_any(mask)) {
          result.detected_by[fi] = batch.base + block_first_lane(mask);
          ++shard_detected[s];
        } else {
          live[kept++] = fi;
        }
      }
      live.resize(kept);
    }
  });
  for (const std::size_t count : shard_detected) {
    result.detected += count;
  }
  return result;
}

// --- bridging faults --------------------------------------------------------

std::vector<BridgingFault> enumerate_bridging_faults(const Netlist& netlist) {
  std::vector<BridgingFault> faults;
  std::unordered_set<std::uint64_t> seen;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    if (cell.type == CellType::Output) {
      continue;
    }
    for (std::size_t i = 0; i < cell.fanin.size(); ++i) {
      for (std::size_t j = i + 1; j < cell.fanin.size(); ++j) {
        const NetId a = std::min(cell.fanin[i], cell.fanin[j]);
        const NetId b = std::max(cell.fanin[i], cell.fanin[j]);
        if (a == b) {
          continue;
        }
        const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
        if (!seen.insert(key).second) {
          continue;
        }
        faults.push_back({a, b, true});
        faults.push_back({a, b, false});
      }
    }
  }
  return faults;
}

std::string bridging_fault_name(const Netlist& netlist, const BridgingFault& fault) {
  const auto label = [&](NetId net) {
    const std::string& name = netlist.net_name(net);
    return name.empty() ? "net" + std::to_string(net) : name;
  };
  return label(fault.a) + "+" + label(fault.b) +
         (fault.wired_and ? "/AND" : "/OR");
}

namespace {

LaneBlock bridging_detect(const CombinationalFrame& frame, const BridgingFault& fault,
                          const CombinationalFrame::FaultCone& cone, std::uint32_t slot_a,
                          std::uint32_t slot_b,
                          const CombinationalFrame::LoadedPatternBatch& batch,
                          std::vector<LaneBlock>& forced,
                          CombinationalFrame::Workspace& workspace) {
  const LaneBlock& va = batch.settled[slot_a];
  const LaneBlock& vb = batch.settled[slot_b];
  const LaneBlock wired = fault.wired_and ? va & vb : va | vb;
  // Both nets take the wired value, so the forced vector is order-agnostic
  // with respect to cone.source_slots.
  forced[0] = wired;
  forced[1] = wired;
  return frame.replay_dirty(cone, forced, batch, batch.good, workspace);
}

}  // namespace

FaultSimResult bridging_fault_simulate(const CombinationalFrame& frame,
                                       const std::vector<BridgingFault>& faults,
                                       const std::vector<BitVec>& patterns) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || patterns.empty()) {
    return result;
  }
  const auto compiled = frame.netlist().compiled();
  // Dirty cones are ad hoc (pair sites), so they are built once per fault
  // here rather than going through the single-net cone cache.
  std::vector<CombinationalFrame::FaultCone> cones;
  cones.reserve(faults.size());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slots;
  slots.reserve(faults.size());
  for (const BridgingFault& fault : faults) {
    cones.push_back(frame.dirty_cone({fault.a, fault.b}));
    slots.emplace_back(compiled->slot(fault.a), compiled->slot(fault.b));
  }
  CombinationalFrame::Workspace workspace;
  std::vector<LaneBlock> forced(2);
  for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    const auto loaded =
        frame.load_batch({patterns.begin() + base, patterns.begin() + base + count});
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (result.detected_by[fi] != npos) {
        continue;
      }
      const LaneBlock mask = bridging_detect(frame, faults[fi], cones[fi],
                                             slots[fi].first, slots[fi].second, loaded,
                                             forced, workspace);
      if (block_any(mask)) {
        result.detected_by[fi] = base + block_first_lane(mask);
        ++result.detected;
      }
    }
  }
  return result;
}

FaultSimResult bridging_fault_simulate(const CombinationalFrame& frame,
                                       const std::vector<BridgingFault>& faults,
                                       const std::vector<BitVec>& patterns,
                                       ThreadPool& pool, std::size_t fault_shard) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || patterns.empty()) {
    return result;
  }
  if (fault_shard == 0) {
    fault_shard = 1;
  }
  const auto compiled = frame.netlist().compiled();
  // Joint cones are independent per fault: build them across the pool.
  std::vector<CombinationalFrame::FaultCone> cones(faults.size());
  pool.parallel_for(faults.size(), [&](std::size_t fi) {
    cones[fi] = frame.dirty_cone({faults[fi].a, faults[fi].b});
  });

  struct Batch {
    std::size_t base = 0;
    CombinationalFrame::LoadedPatternBatch loaded;
  };
  std::vector<Batch> batches((patterns.size() + kLaneBlockBits - 1) / kLaneBlockBits);
  pool.parallel_for(batches.size(), [&](std::size_t b) {
    const std::size_t base = b * kLaneBlockBits;
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    batches[b].base = base;
    batches[b].loaded =
        frame.load_batch({patterns.begin() + base, patterns.begin() + base + count});
  });

  const std::size_t shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  std::vector<std::size_t> shard_detected(shard_count, 0);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * fault_shard;
    const std::size_t last = std::min(faults.size(), first + fault_shard);
    CombinationalFrame::Workspace workspace;
    std::vector<LaneBlock> forced(2);
    std::vector<std::size_t> live;
    live.reserve(last - first);
    for (std::size_t fi = first; fi < last; ++fi) {
      live.push_back(fi);
    }
    for (const Batch& batch : batches) {
      if (live.empty()) {
        break;
      }
      std::size_t kept = 0;
      for (const std::size_t fi : live) {
        const LaneBlock mask = bridging_detect(
            frame, faults[fi], cones[fi], compiled->slot(faults[fi].a),
            compiled->slot(faults[fi].b), batch.loaded, forced, workspace);
        if (block_any(mask)) {
          result.detected_by[fi] = batch.base + block_first_lane(mask);
          ++shard_detected[s];
        } else {
          live[kept++] = fi;
        }
      }
      live.resize(kept);
    }
  });
  for (const std::size_t count : shard_detected) {
    result.detected += count;
  }
  return result;
}

// --- sequential multi-cycle stuck-at ----------------------------------------

namespace {

/// Shared context of one sequential fault-simulation run: per-block random
/// primary-input stimulus and the good-machine primary-output trajectory,
/// both a pure function of (netlist, sequences, cycles, seed) so fault
/// shards reproduce identical results at any thread count.
struct SeqContext {
  std::shared_ptr<const CompiledNetlist> compiled;
  std::vector<std::uint32_t> pi_slots;
  std::vector<std::uint32_t> q_slots;   // flop outputs (state)
  std::vector<std::uint32_t> d_slots;   // flop D inputs (next state)
  std::vector<std::uint32_t> one_slots; // Const1 sources, forced every cycle
  std::vector<std::uint32_t> po_slots;
  std::size_t sequences = 0;
  std::size_t cycles = 0;
  std::size_t block_count = 0;
  /// stimulus[b][t * pi_count + i]: lane block of PI i at cycle t.
  std::vector<std::vector<LaneBlock>> stimulus;
  /// good_po[b][t * po_count + p]: good-machine PO p at cycle t.
  std::vector<std::vector<LaneBlock>> good_po;

  std::size_t block_lanes(std::size_t b) const {
    return std::min<std::size_t>(kLaneBlockBits, sequences - b * kLaneBlockBits);
  }
};

/// Advance one machine by one cycle: load the cycle's PIs and constants,
/// settle, optionally clamp a fault slot and re-propagate its cone, record
/// the cycle's primary outputs into `po_out`, then latch next state.
/// POs must be captured before the latch — a PO fed straight by a flop Q
/// shares that Q's slot, and latching first would overwrite the settled
/// (possibly faulty) output with the fault-free next state.
/// `values` carries the state (flop Q slots) across calls.
void seq_step(const SeqContext& ctx, std::vector<LaneBlock>& values, std::size_t b,
              std::size_t t, const CompiledNetlist::Cone* clamp_cone,
              std::uint32_t clamp_slot, const LaneBlock& clamp_value,
              LaneBlock* po_out, std::vector<LaneBlock>& d_scratch) {
  const std::vector<LaneBlock>& stim = ctx.stimulus[b];
  const std::size_t pi_count = ctx.pi_slots.size();
  for (std::size_t i = 0; i < pi_count; ++i) {
    values[ctx.pi_slots[i]] = stim[t * pi_count + i];
  }
  const LaneBlock ones = block_broadcast(true);
  for (const std::uint32_t slot : ctx.one_slots) {
    values[slot] = ones;
  }
  if (clamp_cone != nullptr) {
    values[clamp_slot] = clamp_value;  // source-slot faults must be in before settle
  }
  ctx.compiled->eval_full(values.data());
  if (clamp_cone != nullptr) {
    // Instruction-driven fault sites were recomputed by the sweep: clamp
    // again and re-propagate just the fanout cone (topological order).
    values[clamp_slot] = clamp_value;
    const auto& instrs = ctx.compiled->instrs();
    for (const std::uint32_t idx : clamp_cone->instrs) {
      values[instrs[idx].out] = CompiledNetlist::eval_instr(instrs[idx], values.data());
    }
  }
  for (std::size_t p = 0; p < ctx.po_slots.size(); ++p) {
    po_out[p] = values[ctx.po_slots[p]];
  }
  // Latch: snapshot every D before writing any Q (flop-to-flop paths).
  for (std::size_t f = 0; f < ctx.d_slots.size(); ++f) {
    d_scratch[f] = values[ctx.d_slots[f]];
  }
  for (std::size_t f = 0; f < ctx.q_slots.size(); ++f) {
    values[ctx.q_slots[f]] = d_scratch[f];
  }
}

SeqContext build_seq_context(const Netlist& netlist, std::size_t sequences,
                             std::size_t cycles, std::uint64_t seed) {
  SeqContext ctx;
  ctx.compiled = netlist.compiled();
  ctx.sequences = sequences;
  ctx.cycles = cycles;
  ctx.block_count = (sequences + kLaneBlockBits - 1) / kLaneBlockBits;
  for (const CellId id : netlist.inputs()) {
    ctx.pi_slots.push_back(ctx.compiled->slot(netlist.cell(id).out));
  }
  for (const CellId id : netlist.flops()) {
    ctx.q_slots.push_back(ctx.compiled->slot(netlist.cell(id).out));
    ctx.d_slots.push_back(ctx.compiled->slot(netlist.cell(id).fanin[0]));
  }
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    if (netlist.cell(id).type == CellType::Const1) {
      ctx.one_slots.push_back(ctx.compiled->slot(netlist.cell(id).out));
    }
  }
  for (const CellId id : netlist.outputs()) {
    ctx.po_slots.push_back(ctx.compiled->slot(netlist.cell(id).fanin[0]));
  }

  // Stimulus is drawn block by block from independent derived streams, so
  // it is identical however the fault list is later sharded.
  ctx.stimulus.resize(ctx.block_count);
  const std::size_t pi_count = ctx.pi_slots.size();
  for (std::size_t b = 0; b < ctx.block_count; ++b) {
    Rng rng(Rng::derive_stream(seed, b));
    ctx.stimulus[b].resize(cycles * pi_count);
    for (LaneBlock& block : ctx.stimulus[b]) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        block.w[w] = rng.next_u64();
      }
    }
  }

  // Good-machine trajectory from the all-zero state.
  ctx.good_po.resize(ctx.block_count);
  const std::size_t po_count = ctx.po_slots.size();
  std::vector<LaneBlock> values(ctx.compiled->slot_count());
  std::vector<LaneBlock> d_scratch(ctx.d_slots.size());
  for (std::size_t b = 0; b < ctx.block_count; ++b) {
    values.assign(values.size(), LaneBlock{});
    ctx.good_po[b].resize(cycles * po_count);
    for (std::size_t t = 0; t < cycles; ++t) {
      seq_step(ctx, values, b, t, nullptr, 0, LaneBlock{},
               ctx.good_po[b].data() + t * po_count, d_scratch);
    }
  }
  return ctx;
}

/// Full faulty-machine re-simulation of one fault over one lane block;
/// returns the per-lane OR of PO differences across all cycles.
LaneBlock seq_fault_block(const SeqContext& ctx, const Fault& fault,
                          const CompiledNetlist::Cone& cone, std::size_t b,
                          std::vector<LaneBlock>& values,
                          std::vector<LaneBlock>& po_scratch,
                          std::vector<LaneBlock>& d_scratch) {
  values.assign(values.size(), LaneBlock{});
  const LaneBlock clamp = block_broadcast(fault.stuck_at);
  const std::uint32_t slot = ctx.compiled->slot(fault.net);
  const std::size_t po_count = ctx.po_slots.size();
  LaneBlock diff{};
  for (std::size_t t = 0; t < ctx.cycles; ++t) {
    seq_step(ctx, values, b, t, &cone, slot, clamp, po_scratch.data(), d_scratch);
    for (std::size_t p = 0; p < po_count; ++p) {
      diff = diff | (po_scratch[p] ^ ctx.good_po[b][t * po_count + p]);
    }
  }
  return diff & block_lane_mask(ctx.block_lanes(b));
}

}  // namespace

FaultSimResult sequential_fault_simulate(const Netlist& netlist,
                                         const std::vector<Fault>& faults,
                                         std::size_t sequences, std::size_t cycles,
                                         std::uint64_t seed) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || sequences == 0 || cycles == 0) {
    return result;
  }
  const SeqContext ctx = build_seq_context(netlist, sequences, cycles, seed);
  std::vector<LaneBlock> values(ctx.compiled->slot_count());
  std::vector<LaneBlock> po_scratch(ctx.po_slots.size());
  std::vector<LaneBlock> d_scratch(ctx.d_slots.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const CompiledNetlist::Cone cone = ctx.compiled->build_cone(faults[fi].net);
    for (std::size_t b = 0; b < ctx.block_count; ++b) {
      const LaneBlock diff =
          seq_fault_block(ctx, faults[fi], cone, b, values, po_scratch, d_scratch);
      if (block_any(diff)) {
        result.detected_by[fi] = b * kLaneBlockBits + block_first_lane(diff);
        ++result.detected;
        break;
      }
    }
  }
  return result;
}

FaultSimResult sequential_fault_simulate(const Netlist& netlist,
                                         const std::vector<Fault>& faults,
                                         std::size_t sequences, std::size_t cycles,
                                         std::uint64_t seed, ThreadPool& pool,
                                         std::size_t fault_shard) {
  FaultSimResult result;
  result.total_faults = faults.size();
  result.detected_by.assign(faults.size(), npos);
  if (faults.empty() || sequences == 0 || cycles == 0) {
    return result;
  }
  if (fault_shard == 0) {
    fault_shard = 1;
  }
  const SeqContext ctx = build_seq_context(netlist, sequences, cycles, seed);
  const std::size_t shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  std::vector<std::size_t> shard_detected(shard_count, 0);
  pool.parallel_for(shard_count, [&](std::size_t s) {
    const std::size_t first = s * fault_shard;
    const std::size_t last = std::min(faults.size(), first + fault_shard);
    std::vector<LaneBlock> values(ctx.compiled->slot_count());
    std::vector<LaneBlock> po_scratch(ctx.po_slots.size());
    std::vector<LaneBlock> d_scratch(ctx.d_slots.size());
    for (std::size_t fi = first; fi < last; ++fi) {
      const CompiledNetlist::Cone cone = ctx.compiled->build_cone(faults[fi].net);
      for (std::size_t b = 0; b < ctx.block_count; ++b) {
        const LaneBlock diff =
            seq_fault_block(ctx, faults[fi], cone, b, values, po_scratch, d_scratch);
        if (block_any(diff)) {
          result.detected_by[fi] = b * kLaneBlockBits + block_first_lane(diff);
          ++shard_detected[s];
          break;
        }
      }
    }
  });
  for (const std::size_t count : shard_detected) {
    result.detected += count;
  }
  return result;
}

}  // namespace retscan
