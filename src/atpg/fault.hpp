#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace retscan {

/// Single stuck-at fault on a net (the driving stem). The library uses the
/// stem fault model: one SA0 and one SA1 per driven net. Branch (pin)
/// faults are not modelled separately; for fanout-free regions they are
/// equivalent to the stem fault, which keeps coverage numbers meaningful
/// while halving the fault universe — the classic simplification.
struct Fault {
  NetId net = kNullNet;
  bool stuck_at = false;  ///< stuck value: false = SA0, true = SA1

  bool operator==(const Fault& other) const {
    return net == other.net && stuck_at == other.stuck_at;
  }
};

/// Human-readable fault name for reports: "<netname-or-id>/SA0".
std::string fault_name(const Netlist& netlist, const Fault& fault);

/// Enumerate the full stem fault universe: SA0 + SA1 on every net that is
/// driven and read by at least one cell (dangling nets are excluded — they
/// are unobservable by construction).
std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Structural fault collapsing. Rules applied:
///  * Buf: output SAv is equivalent to input SAv — keep the input fault.
///  * Not: output SAv is equivalent to input SA(!v) — keep the input fault.
/// Returns the collapsed list (order-preserving over representatives).
std::vector<Fault> collapse_faults(const Netlist& netlist, const std::vector<Fault>& faults);

}  // namespace retscan
