#pragma once

#include <cstddef>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "core/protected_design.hpp"
#include "scan/scan_insert.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Apply a combinational-frame test pattern set to a live simulated design
/// through its scan chains — the procedure a tester executes — and check
/// each response against the good machine. This is how the library proves
/// the Section III claim: the monitoring chain configuration, concatenated
/// per Fig. 5(b), delivers exactly the same manufacturing test.

/// Result of applying a pattern set through scan.
struct ScanTestResult {
  std::size_t patterns_applied = 0;
  std::size_t mismatches = 0;  ///< responses differing from the good machine
  bool all_passed() const { return mismatches == 0; }
};

/// Apply patterns to a plain scanned design through its per-chain si/so
/// ports (full-width scan access).
ScanTestResult apply_scan_test(Simulator& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns);

/// 64-way parallel-pattern variant: each PackedSim lane shifts, captures and
/// checks a different pattern, so a whole 64-pattern batch costs one scan
/// load plus one capture cycle. This is the coverage-run workhorse.
ScanTestResult apply_scan_test(PackedSim& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns);

/// Apply patterns to a ProtectedDesign through the narrow manufacturing
/// test ports tsi/tso with test_mode asserted, exercising the Fig. 5(b)
/// concatenation muxes. Shift depth is (W/T) * l per load/unload.
ScanTestResult apply_test_mode_scan_test(RetentionSession& session,
                                         const ProtectedDesign& design,
                                         const CombinationalFrame& frame,
                                         const std::vector<BitVec>& patterns);

/// 64-way parallel-pattern test-mode delivery: one lane per pattern through
/// the same tsi/tso concatenation. Builds its own PackedSim over the design.
ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns);

/// Multi-threaded 64-lane test-mode delivery: the pattern set is sharded
/// into 64-lane-aligned chunks across the pool and every shard drives its
/// own PackedSim over the design (scan loading fully overwrites the state
/// each batch, so shards are independent and the merged result is
/// identical to the single-threaded packed pass at any thread count).
ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns,
                                                ThreadPool& pool,
                                                std::size_t patterns_per_shard = 256);

}  // namespace retscan
