#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "core/protected_design.hpp"
#include "scan/scan_insert.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Apply a combinational-frame test pattern set to a live simulated design
/// through its scan chains — the procedure a tester executes — and check
/// each response against the good machine. This is how the library proves
/// the Section III claim: the monitoring chain configuration, concatenated
/// per Fig. 5(b), delivers exactly the same manufacturing test.
///
/// The five apply_* overloads below are the pre-v1 delivery entry points;
/// new code should route through Session::run_scan_test (retscan/session.hpp
/// and the migration map in retscan/legacy.hpp), which picks among them
/// from one options struct. They remain supported as the facade's backends;
/// the attribute below warns external callers unless
/// RETSCAN_SUPPRESS_DEPRECATED is defined before any retscan include.
#if defined(RETSCAN_SUPPRESS_DEPRECATED)
#define RETSCAN_DEPRECATED_DELIVERY
#else
#define RETSCAN_DEPRECATED_DELIVERY \
  [[deprecated("route deliveries through retscan::Session::run_scan_test")]]
#endif

/// Shard geometry of the pooled test-mode delivery: `requested` patterns
/// per shard, floored to whole 64-lane batches (minimum one batch). The
/// pooled delivery and CampaignResult::shard_count both derive their shard
/// plan from this one function.
inline std::size_t test_mode_patterns_per_shard(std::size_t requested) {
  const std::size_t lanes = PackedSim::lane_count();
  return std::max<std::size_t>(lanes, requested / lanes * lanes);
}

/// Result of applying a pattern set through scan.
struct ScanTestResult {
  std::size_t patterns_applied = 0;
  std::size_t mismatches = 0;  ///< responses differing from the good machine
  bool all_passed() const { return mismatches == 0; }
};

/// Apply patterns to a plain scanned design through its per-chain si/so
/// ports (full-width scan access).
RETSCAN_DEPRECATED_DELIVERY
ScanTestResult apply_scan_test(Simulator& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns);

/// 64-way parallel-pattern variant: each PackedSim lane shifts, captures and
/// checks a different pattern, so a whole 64-pattern batch costs one scan
/// load plus one capture cycle. This is the coverage-run workhorse.
RETSCAN_DEPRECATED_DELIVERY
ScanTestResult apply_scan_test(PackedSim& sim, const ScanChains& chains,
                               const CombinationalFrame& frame,
                               const std::vector<BitVec>& patterns);

/// Apply patterns to a ProtectedDesign through the narrow manufacturing
/// test ports tsi/tso with test_mode asserted, exercising the Fig. 5(b)
/// concatenation muxes. Shift depth is (W/T) * l per load/unload.
RETSCAN_DEPRECATED_DELIVERY
ScanTestResult apply_test_mode_scan_test(RetentionSession& session,
                                         const ProtectedDesign& design,
                                         const CombinationalFrame& frame,
                                         const std::vector<BitVec>& patterns);

/// 64-way parallel-pattern test-mode delivery: one lane per pattern through
/// the same tsi/tso concatenation. Builds its own PackedSim over the design.
RETSCAN_DEPRECATED_DELIVERY
ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns);

/// Multi-threaded 64-lane test-mode delivery: the pattern set is sharded
/// into 64-lane-aligned chunks across the pool and every shard drives its
/// own PackedSim over the design (scan loading fully overwrites the state
/// each batch, so shards are independent and the merged result is
/// identical to the single-threaded packed pass at any thread count).
RETSCAN_DEPRECATED_DELIVERY
ScanTestResult apply_test_mode_scan_test_packed(const ProtectedDesign& design,
                                                const CombinationalFrame& frame,
                                                const std::vector<BitVec>& patterns,
                                                ThreadPool& pool,
                                                std::size_t patterns_per_shard = 256);

}  // namespace retscan
