#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Plain-text interchange format for scan test pattern sets — the handoff
/// artifact between ATPG and the tester (a simplified STIL). Layout:
///
///   # retscan patterns v1
///   inputs <pi-count> flops <flop-count>
///   pattern <pi-bits><ppi-bits>        (one '0'/'1' string per line)
///   ...
///
/// Responses are not stored; the tester recomputes the good machine (or
/// asks the frame). Round-trips exactly.
void write_patterns(std::ostream& os, const CombinationalFrame& frame,
                    const std::vector<BitVec>& patterns);

/// Parse a pattern file; validates widths against the frame and throws
/// retscan::Error on any malformed content.
std::vector<BitVec> read_patterns(std::istream& is, const CombinationalFrame& frame);

}  // namespace retscan
