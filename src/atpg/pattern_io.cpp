#include "atpg/pattern_io.hpp"

#include <sstream>
#include <string>

#include "util/error.hpp"

namespace retscan {

void write_patterns(std::ostream& os, const CombinationalFrame& frame,
                    const std::vector<BitVec>& patterns) {
  os << "# retscan patterns v1\n";
  os << "inputs " << frame.pi_nets().size() << " flops " << frame.flops().size() << "\n";
  for (const BitVec& pattern : patterns) {
    RETSCAN_CHECK(pattern.size() == frame.pattern_width(),
                  "write_patterns: pattern width mismatch");
    os << "pattern " << pattern.to_string() << "\n";
  }
}

std::vector<BitVec> read_patterns(std::istream& is, const CombinationalFrame& frame) {
  std::vector<BitVec> patterns;
  std::string line;
  bool header_seen = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "inputs") {
      std::size_t pis = 0, flops = 0;
      std::string flops_keyword;
      fields >> pis >> flops_keyword >> flops;
      RETSCAN_CHECK(flops_keyword == "flops", "read_patterns: malformed header");
      RETSCAN_CHECK(pis == frame.pi_nets().size() && flops == frame.flops().size(),
                    "read_patterns: geometry does not match the frame");
      header_seen = true;
    } else if (keyword == "pattern") {
      RETSCAN_CHECK(header_seen, "read_patterns: pattern before header");
      std::string bits;
      fields >> bits;
      const BitVec pattern = BitVec::from_string(bits);
      RETSCAN_CHECK(pattern.size() == frame.pattern_width(),
                    "read_patterns: pattern width mismatch");
      patterns.push_back(pattern);
    } else {
      RETSCAN_CHECK(false, "read_patterns: unknown keyword " + keyword);
    }
  }
  RETSCAN_CHECK(header_seen, "read_patterns: missing header");
  return patterns;
}

}  // namespace retscan
