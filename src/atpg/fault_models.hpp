#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace retscan {

/// Transition-delay fault on a net: the 0→1 (slow-to-rise) or 1→0
/// (slow-to-fall) transition never completes within the cycle. Simulated as
/// launch/capture pattern pairs through the CombinationalFrame: pair k is
/// (patterns[k], patterns[k+1]); the fault is detected by pair k iff the
/// launch pattern sets the net to the transition's initial value and the
/// capture pattern detects the corresponding stuck-at fault (the net frozen
/// at its initial value is exactly SA0 for slow-to-rise, SA1 for
/// slow-to-fall during capture).
struct TransitionFault {
  NetId net = kNullNet;
  bool slow_to_rise = false;  ///< true: 0→1 fails (STR); false: 1→0 fails (STF)

  bool operator==(const TransitionFault& other) const {
    return net == other.net && slow_to_rise == other.slow_to_rise;
  }
};

/// One STR and one STF per stuck-at fault site (same stem universe).
std::vector<TransitionFault> enumerate_transition_faults(const Netlist& netlist);

std::string transition_fault_name(const Netlist& netlist, const TransitionFault& fault);

/// Launch/capture transition-delay fault simulation with fault dropping.
/// detected_by[i] is the index of the first detecting pattern *pair*
/// (patterns.size() - 1 pairs exist). Reuses the packed kernel: per block,
/// the launch and capture batches are loaded and settled once, then every
/// live fault is an incremental cone pass over the capture batch masked by
/// the launch-value condition.
FaultSimResult transition_fault_simulate(const CombinationalFrame& frame,
                                         const std::vector<TransitionFault>& faults,
                                         const std::vector<BitVec>& patterns);
/// Pooled variant: bit-identical to the serial result at any thread count
/// (fault shards own disjoint result slots; pairs are pure functions of the
/// pattern list).
FaultSimResult transition_fault_simulate(const CombinationalFrame& frame,
                                         const std::vector<TransitionFault>& faults,
                                         const std::vector<BitVec>& patterns,
                                         ThreadPool& pool, std::size_t fault_shard = 128);

/// Bridging fault between two nets with wired-AND or wired-OR dominance:
/// both nets take a OP b whenever the pattern drives them apart. Simulated
/// with the multi-source dirty-cone machinery: force both nets to the wired
/// value and replay the joint fanout cone.
struct BridgingFault {
  NetId a = kNullNet;
  NetId b = kNullNet;
  bool wired_and = false;  ///< true: wired-AND; false: wired-OR

  bool operator==(const BridgingFault& other) const {
    return a == other.a && b == other.b && wired_and == other.wired_and;
  }
};

/// Gate-input bridges: every unordered pair of distinct fanin nets of the
/// same cell, deduplicated across the netlist, with one wired-AND and one
/// wired-OR fault per pair (the classic intra-gate bridge universe —
/// quadratic-in-nets universes need a layout, which a netlist doesn't have).
std::vector<BridgingFault> enumerate_bridging_faults(const Netlist& netlist);

std::string bridging_fault_name(const Netlist& netlist, const BridgingFault& fault);

/// Bridging fault simulation with fault dropping; detected_by[i] is the
/// first detecting pattern index.
FaultSimResult bridging_fault_simulate(const CombinationalFrame& frame,
                                       const std::vector<BridgingFault>& faults,
                                       const std::vector<BitVec>& patterns);
FaultSimResult bridging_fault_simulate(const CombinationalFrame& frame,
                                       const std::vector<BridgingFault>& faults,
                                       const std::vector<BitVec>& patterns,
                                       ThreadPool& pool, std::size_t fault_shard = 128);

/// Sequential multi-cycle stuck-at fault simulation for '89-class circuits:
/// no scan access — lanes are independent random primary-input sequences of
/// `cycles` cycles from the all-zero flop state, and a fault is detected
/// when any primary output differs from the good machine in any cycle. The
/// good trajectory settles once per lane block; every fault is then a full
/// faulty-machine re-simulation with its net clamped (fault effects must
/// propagate through the flops cycle over cycle, which a combinational cone
/// cannot express). detected_by[i] is the first detecting sequence index.
FaultSimResult sequential_fault_simulate(const Netlist& netlist,
                                         const std::vector<Fault>& faults,
                                         std::size_t sequences, std::size_t cycles,
                                         std::uint64_t seed);
FaultSimResult sequential_fault_simulate(const Netlist& netlist,
                                         const std::vector<Fault>& faults,
                                         std::size_t sequences, std::size_t cycles,
                                         std::uint64_t seed, ThreadPool& pool,
                                         std::size_t fault_shard = 64);

}  // namespace retscan
