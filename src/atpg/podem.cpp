#include "atpg/podem.hpp"

#include <limits>

#include "util/error.hpp"

namespace retscan {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
constexpr std::uint8_t kX = 2;

std::uint8_t v_not(std::uint8_t a) { return a == kX ? kX : (a ? 0 : 1); }
std::uint8_t v_and(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == 1 && b == 1) return 1;
  return kX;
}
std::uint8_t v_or(std::uint8_t a, std::uint8_t b) {
  if (a == 1 || b == 1) return 1;
  if (a == 0 && b == 0) return 0;
  return kX;
}
std::uint8_t v_xor(std::uint8_t a, std::uint8_t b) {
  if (a == kX || b == kX) return kX;
  return a ^ b;
}
std::uint8_t v_mux(std::uint8_t s, std::uint8_t lo, std::uint8_t hi) {
  if (s == 0) return lo;
  if (s == 1) return hi;
  // Select unknown: output known only if both branches agree.
  return (lo != kX && lo == hi) ? lo : kX;
}
}  // namespace

Podem::Podem(const CombinationalFrame& frame, std::size_t max_backtracks)
    : frame_(&frame),
      max_backtracks_(max_backtracks),
      good_(frame.netlist().net_count(), kX),
      faulty_(frame.netlist().net_count(), kX),
      input_values_(frame.pattern_width(), kX),
      input_of_net_(frame.netlist().net_count(), kNpos) {
  input_nets_.reserve(frame.pattern_width());
  for (const NetId net : frame.pi_nets()) {
    input_of_net_[net] = input_nets_.size();
    input_nets_.push_back(net);
  }
  for (const CellId flop : frame.flops()) {
    const NetId q = frame.netlist().cell(flop).out;
    input_of_net_[q] = input_nets_.size();
    input_nets_.push_back(q);
  }
}

void Podem::imply(const Fault& fault) {
  const Netlist& nl = frame_->netlist();
  std::fill(good_.begin(), good_.end(), kX);
  std::fill(faulty_.begin(), faulty_.end(), kX);
  for (std::size_t i = 0; i < input_nets_.size(); ++i) {
    good_[input_nets_[i]] = input_values_[i];
    faulty_[input_nets_[i]] = input_values_[i];
  }
  // Constant cells are sources outside the topological order.
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const CellType t = nl.cell(id).type;
    if (t == CellType::Const0 || t == CellType::Const1) {
      const std::uint8_t v = t == CellType::Const1 ? 1 : 0;
      good_[nl.cell(id).out] = v;
      faulty_[nl.cell(id).out] = v;
    }
  }
  const std::uint8_t sa = fault.stuck_at ? 1 : 0;
  if (faulty_[fault.net] != kX || input_of_net_[fault.net] != kNpos) {
    faulty_[fault.net] = sa;
  }
  // A single forward pass in topological order suffices (no backward
  // implication — PODEM only assigns at inputs).
  for (const CellId id : nl.combinational_order()) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    auto eval_one = [&](const std::vector<std::uint8_t>& v) -> std::uint8_t {
      const auto& f = c.fanin;
      switch (c.type) {
        case CellType::Buf: return v[f[0]];
        case CellType::Not: return v_not(v[f[0]]);
        case CellType::And2: return v_and(v[f[0]], v[f[1]]);
        case CellType::Or2: return v_or(v[f[0]], v[f[1]]);
        case CellType::Xor2: return v_xor(v[f[0]], v[f[1]]);
        case CellType::Nand2: return v_not(v_and(v[f[0]], v[f[1]]));
        case CellType::Nor2: return v_not(v_or(v[f[0]], v[f[1]]));
        case CellType::Xnor2: return v_not(v_xor(v[f[0]], v[f[1]]));
        case CellType::Mux2: return v_mux(v[f[0]], v[f[1]], v[f[2]]);
        case CellType::Const0: return 0;
        case CellType::Const1: return 1;
        default: return kX;
      }
    };
    good_[c.out] = eval_one(good_);
    faulty_[c.out] = eval_one(faulty_);
    if (c.out == fault.net) {
      faulty_[c.out] = sa;
    }
  }
}

bool Podem::detected() const {
  const Netlist& nl = frame_->netlist();
  for (const NetId po : frame_->po_nets()) {
    if (good_[po] != kX && faulty_[po] != kX && good_[po] != faulty_[po]) {
      return true;
    }
  }
  for (const CellId flop : frame_->flops()) {
    const NetId d = nl.cell(flop).fanin[0];
    if (good_[d] != kX && faulty_[d] != kX && good_[d] != faulty_[d]) {
      return true;
    }
  }
  return false;
}

bool Podem::activation_impossible(const Fault& fault) const {
  const std::uint8_t sa = fault.stuck_at ? 1 : 0;
  return good_[fault.net] == sa;
}

bool Podem::propagation_impossible(const Fault& fault) const {
  // Fault must be activated (good side definite and != sa) for this check.
  if (good_[fault.net] == kX) {
    return false;
  }
  // D-frontier: any gate with a D input and an X output keeps hope alive.
  const Netlist& nl = frame_->netlist();
  for (const CellId id : nl.combinational_order()) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::Output || c.out == kNullNet) {
      continue;
    }
    const bool out_x = good_[c.out] == kX || faulty_[c.out] == kX;
    if (!out_x) {
      continue;
    }
    for (const NetId in : c.fanin) {
      if (good_[in] != kX && faulty_[in] != kX && good_[in] != faulty_[in]) {
        return false;  // live D-frontier gate
      }
    }
  }
  return !detected();
}

Podem::Objective Podem::pick_objective(const Fault& fault) const {
  Objective objective;
  // Phase 1: activate the fault.
  if (good_[fault.net] == kX) {
    objective.valid = true;
    objective.net = fault.net;
    objective.value = !fault.stuck_at;
    return objective;
  }
  // Phase 2: advance the D-frontier — pick the first frontier gate and set
  // one of its X inputs to the gate's non-controlling value.
  const Netlist& nl = frame_->netlist();
  for (const CellId id : nl.combinational_order()) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::Output || c.out == kNullNet) {
      continue;
    }
    if (!(good_[c.out] == kX || faulty_[c.out] == kX)) {
      continue;
    }
    bool has_d = false;
    for (const NetId in : c.fanin) {
      if (good_[in] != kX && faulty_[in] != kX && good_[in] != faulty_[in]) {
        has_d = true;
        break;
      }
    }
    if (!has_d) {
      continue;
    }
    for (std::size_t pin = 0; pin < c.fanin.size(); ++pin) {
      const NetId in = c.fanin[pin];
      if (good_[in] != kX || faulty_[in] != kX) {
        continue;
      }
      objective.valid = true;
      objective.net = in;
      switch (c.type) {
        case CellType::And2:
        case CellType::Nand2:
          objective.value = true;
          break;
        case CellType::Or2:
        case CellType::Nor2:
          objective.value = false;
          break;
        case CellType::Mux2:
          if (pin == 0) {
            // Select the side carrying the D.
            const NetId lo = c.fanin[1];
            objective.value =
                !(good_[lo] != kX && faulty_[lo] != kX && good_[lo] != faulty_[lo]);
          } else {
            objective.value = false;
          }
          break;
        default:
          objective.value = false;  // XOR-family: any definite value
          break;
      }
      return objective;
    }
  }
  return objective;  // invalid — caller backtracks
}

std::pair<std::size_t, bool> Podem::backtrace(const Objective& objective) const {
  const Netlist& nl = frame_->netlist();
  NetId net = objective.net;
  bool value = objective.value;
  for (;;) {
    if (input_of_net_[net] != kNpos) {
      return {input_of_net_[net], value};
    }
    const CellId drv = nl.driver(net);
    RETSCAN_CHECK(drv != kNullCell, "Podem::backtrace: undriven net");
    const Cell& c = nl.cell(drv);
    // Choose the first X input to keep walking through.
    NetId next = kNullNet;
    std::size_t next_pin = 0;
    for (std::size_t pin = 0; pin < c.fanin.size(); ++pin) {
      if (good_[c.fanin[pin]] == kX) {
        next = c.fanin[pin];
        next_pin = pin;
        break;
      }
    }
    RETSCAN_CHECK(next != kNullNet, "Podem::backtrace: no X path to inputs");
    switch (c.type) {
      case CellType::Not:
      case CellType::Nand2:
      case CellType::Nor2:
        value = !value;
        break;
      case CellType::Mux2:
        if (next_pin == 0) {
          // Steering the select: aim it at a definite branch... value
          // heuristic: keep as-is.
        }
        break;
      default:
        break;  // Buf/And/Or/Xor-family: keep value (heuristic for XOR)
    }
    net = next;
  }
}

PodemResult Podem::generate(const Fault& fault, Rng& rng) {
  PodemResult result;
  std::fill(input_values_.begin(), input_values_.end(), kX);
  // Constrained inputs are fixed before any decision and are never X, so
  // backtrace cannot choose them and backtracking cannot flip them.
  for (const auto& [index, value] : frame_->constraints()) {
    input_values_[index] = value ? 1 : 0;
  }

  struct Decision {
    std::size_t input;
    bool flipped;
  };
  std::vector<Decision> stack;
  imply(fault);

  const std::size_t iteration_limit = 20000;
  for (std::size_t iteration = 0; iteration < iteration_limit; ++iteration) {
    if (detected()) {
      result.success = true;
      result.pattern = BitVec(frame_->pattern_width());
      for (std::size_t i = 0; i < input_values_.size(); ++i) {
        const std::uint8_t v = input_values_[i];
        result.pattern.set(i, v == kX ? rng.next_bool(0.5) : v == 1);
      }
      return result;
    }

    const bool conflict = activation_impossible(fault) || propagation_impossible(fault);
    Objective objective;
    if (!conflict) {
      objective = pick_objective(fault);
    }
    if (conflict || !objective.valid) {
      // Backtrack chronologically.
      for (;;) {
        if (stack.empty()) {
          result.untestable = result.backtracks <= max_backtracks_;
          result.aborted = !result.untestable;
          return result;
        }
        Decision& top = stack.back();
        if (!top.flipped) {
          top.flipped = true;
          input_values_[top.input] = input_values_[top.input] == 1 ? 0 : 1;
          ++result.backtracks;
          break;
        }
        input_values_[top.input] = kX;
        stack.pop_back();
      }
      if (result.backtracks > max_backtracks_) {
        result.aborted = true;
        return result;
      }
      imply(fault);
      continue;
    }

    const auto [input, value] = backtrace(objective);
    input_values_[input] = value ? 1 : 0;
    stack.push_back(Decision{input, false});
    imply(fault);
  }
  result.aborted = true;
  return result;
}

}  // namespace retscan
